"""Ensembles for the paper's output-uncertainty signals.

Section 2.4:

* ``U_pi`` uses "an ensemble of i different agents trained in the same
  training environment, where the only difference in the training process
  is the initialization of the neural network variables".
* ``U_V`` uses i value functions "trained on the training distribution";
  they are trained *with respect to a single agent's policy* by observing
  the states and rewards that policy produces.

Both trainers here derive member seeds from one root seed, so an ensemble
is a deterministic function of ``(traces, config, root_seed)``.
"""

from __future__ import annotations

import numpy as np

from repro.abr.session import run_session
from repro.errors import TrainingError
from repro.mdp.rollout import discounted_returns
from repro.parallel import parallel_map
from repro.parallel import worker as parallel_worker
from repro.pensieve.agent import PensieveAgent, PensieveValueFunction
from repro.pensieve.training import TrainingConfig
from repro.traces.trace import Trace
from repro.util.rng import rng_from_seed, spawn_seeds
from repro.video.manifest import VideoManifest
from repro.video.qoe import QoEMetric

__all__ = ["train_agent_ensemble", "train_value_ensemble"]


def train_agent_ensemble(
    manifest: VideoManifest,
    training_traces: list[Trace] | tuple[Trace, ...],
    size: int = 5,
    config: TrainingConfig | None = None,
    qoe_metric: QoEMetric | None = None,
    root_seed: int = 0,
    max_workers: int | None = None,
) -> list[PensieveAgent]:
    """Train *size* agents that differ only in initialization seed.

    Members are independent given their seeds, so they train in parallel
    when *max_workers* (or ``REPRO_MAX_WORKERS``) allows; results are
    identical to the serial loop.
    """
    if size < 1:
        raise TrainingError(f"ensemble size must be >= 1, got {size}")
    config = config if config is not None else TrainingConfig()
    return parallel_map(
        parallel_worker.train_agent_member,
        spawn_seeds(root_seed, size),
        max_workers=max_workers,
        initializer=parallel_worker.init_agent_training,
        initargs=(manifest, tuple(training_traces), config, qoe_metric),
    )


def collect_value_targets(
    agent: PensieveAgent,
    manifest: VideoManifest,
    traces: list[Trace] | tuple[Trace, ...],
    gamma: float,
    qoe_metric: QoEMetric | None = None,
    reward_scale: float = 1.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Roll the agent over *traces*; return ``(observations, returns)``.

    These are the regression targets for the externally trained value
    functions: the discounted returns actually derived from following the
    agent's policy on its training data.  Actions are *sampled* from the
    policy rather than taken greedily — the paper trains value functions
    "by observing the history of states, actions, and rewards resulting
    from the agent-environment interaction while training", i.e. on the
    exploratory distribution, which is what gives the ensemble state
    diversity to disagree about out-of-distribution.
    """
    if not traces:
        raise TrainingError("no traces to collect value targets from")
    sampling_agent = PensieveAgent(
        agent.bitrates_kbps, actor=agent.actor, critic=agent.critic, greedy=False
    )
    observations: list[np.ndarray] = []
    returns: list[np.ndarray] = []
    rng = rng_from_seed(seed)
    for trace in traces:
        result = run_session(
            sampling_agent, manifest, trace, qoe_metric=qoe_metric, seed=rng
        )
        rewards = np.array([record.reward for record in result.chunks])
        returns.append(discounted_returns(rewards * reward_scale, gamma))
        observations.append(result.observations)
    return np.concatenate(observations), np.concatenate(returns)


def train_value_ensemble(
    agent: PensieveAgent,
    manifest: VideoManifest,
    training_traces: list[Trace] | tuple[Trace, ...],
    size: int = 5,
    gamma: float = 0.99,
    epochs: int = 200,
    learning_rate: float = 2e-3,
    filters: int = 8,
    hidden: int = 48,
    reward_scale: float = 1.0,
    qoe_metric: QoEMetric | None = None,
    root_seed: int = 0,
    max_workers: int | None = None,
) -> list[PensieveValueFunction]:
    """Train *size* value functions for one agent's policy.

    Each member regresses the same ``(observation, discounted return)``
    dataset with a differently initialized critic network, exactly the
    paper's recipe for ``U_V``.  Target collection walks one shared RNG
    and stays in the calling process; only the independent per-member
    regressions fan out to workers.
    """
    if size < 1:
        raise TrainingError(f"ensemble size must be >= 1, got {size}")
    if epochs < 1:
        raise TrainingError(f"epochs must be >= 1, got {epochs}")
    observations, targets = collect_value_targets(
        agent,
        manifest,
        training_traces,
        gamma=gamma,
        qoe_metric=qoe_metric,
        reward_scale=reward_scale,
        seed=root_seed,
    )
    return parallel_map(
        parallel_worker.train_value_member,
        spawn_seeds(root_seed + 1, size),
        max_workers=max_workers,
        initializer=parallel_worker.init_value_training,
        initargs=(
            observations,
            targets,
            manifest.num_bitrates,
            epochs,
            learning_rate,
            filters,
            hidden,
        ),
    )
