"""Batched forward passes over an ensemble of identically shaped networks.

The paper's ``U_pi``/``U_V`` signals query all five ensemble members at
every decision step.  Looping over five :class:`Sequential` forwards pays
the full per-layer Python overhead five times for five tiny matmuls; here
the member weights are stacked once at construction into ``(members, ...)``
arrays so one fused pass answers for the whole ensemble.

Every operation is arranged so that member *m*'s slice goes through
exactly the arithmetic of its own network — stacked ``matmul`` dispatches
one GEMM per member slice, and the single-input-channel convolutions are
one-term sums — so the stacked outputs are **bitwise identical** to the
member-by-member loop (asserted by the regression tests).

The stacked copies are snapshots: if member weights are mutated in place
afterwards (e.g. by in-situ adaptation), call :meth:`refresh`.
"""

from __future__ import annotations

import numpy as np

from repro.abr.state import S_INFO, S_LEN
from repro.errors import ModelError
from repro.nn.losses import softmax
from repro.pensieve.model import ActorNetwork, CriticNetwork, PensieveTrunk

__all__ = ["StackedActorEnsemble", "StackedCriticEnsemble"]


class _StackedTrunk:
    """Member-stacked weights of structurally identical trunks."""

    def __init__(self, trunks: list[PensieveTrunk]) -> None:
        if not trunks:
            raise ModelError("need at least one trunk to stack")
        first = trunks[0]
        for trunk in trunks[1:]:
            if (
                trunk.num_bitrates != first.num_bitrates
                or trunk.filters != first.filters
                or trunk.hidden != first.hidden
            ):
                raise ModelError(
                    "cannot stack trunks with different architectures"
                )
        self.trunks = list(trunks)
        self.num_bitrates = first.num_bitrates
        self.refresh()

    def refresh(self) -> None:
        """Re-snapshot the member weights (after in-place mutation)."""
        trunks = self.trunks
        # Scalar branches: Dense(1, F) weights as (M, 3, F).
        self._dense_w = np.stack(
            [
                [branch.layers[0].weight[0] for branch in t._branches[:3]]
                for t in trunks
            ]
        )
        self._dense_b = np.stack(
            [[branch.layers[0].bias for branch in t._branches[:3]] for t in trunks]
        )
        # History convolutions (throughput, delay): (M, 2, O, K).
        self._hist_w = np.stack(
            [
                [
                    t._conv_throughput.layers[0].weight[:, 0, :],
                    t._conv_delay.layers[0].weight[:, 0, :],
                ]
                for t in trunks
            ]
        )
        self._hist_b = np.stack(
            [
                [t._conv_throughput.layers[0].bias, t._conv_delay.layers[0].bias]
                for t in trunks
            ]
        )
        self._hist_kernel = trunks[0]._conv_throughput.layers[0].kernel_size
        # Next-chunk-sizes convolution: (M, O, K).
        self._sizes_w = np.stack(
            [t._conv_sizes.layers[0].weight[:, 0, :] for t in trunks]
        )
        self._sizes_b = np.stack([t._conv_sizes.layers[0].bias for t in trunks])
        self._sizes_kernel = trunks[0]._conv_sizes.layers[0].kernel_size
        # Merge layer: (M, merged, H).
        self._merge_w = np.stack([t._merge.layers[0].weight for t in trunks])
        self._merge_b = np.stack([t._merge.layers[0].bias for t in trunks])
        # Broadcast-ready copies so features() does no per-call reshaping.
        self._dense_w_e = np.ascontiguousarray(self._dense_w[:, None])
        self._dense_b_e = np.ascontiguousarray(self._dense_b[:, None])
        self._hist_w_off = [
            np.ascontiguousarray(self._hist_w[:, None, :, :, offset, None])
            for offset in range(self._hist_kernel)
        ]
        self._hist_b_e = np.ascontiguousarray(self._hist_b[:, None, :, :, None])
        self._sizes_w_off = [
            np.ascontiguousarray(self._sizes_w[:, None, :, offset, None])
            for offset in range(self._sizes_kernel)
        ]
        self._sizes_b_e = np.ascontiguousarray(self._sizes_b[:, None, :, None])
        self._merge_b_e = np.ascontiguousarray(self._merge_b[:, None, :])

    def features(self, observations: np.ndarray) -> np.ndarray:
        """Map ``(batch, 6, 8)`` observations to ``(members, batch, hidden)``."""
        obs = np.asarray(observations, dtype=float)
        if obs.ndim == 2:
            obs = obs[None, :, :]
        if obs.ndim != 3 or obs.shape[1:] != (S_INFO, S_LEN):
            raise ModelError(
                f"expected (batch, {S_INFO}, {S_LEN}) observations, got {obs.shape}"
            )
        batch = obs.shape[0]
        members = self._dense_w.shape[0]
        # Scalars: one-term matmuls as a broadcast multiply-add.
        scalars = obs[:, (0, 1, 5), -1]
        ys = scalars[None, :, :, None] * self._dense_w_e + self._dense_b_e
        ys = np.where(ys > 0, ys, 0.0).reshape(members, batch, -1)
        # History convolutions, both branches and all members in one loop.
        # Accumulating from the first term instead of zeros only ever flips
        # the sign of an exact zero, which the ReLU below maps to +0.0
        # either way, so the post-ReLU floats match the member loop.
        out_length = S_LEN - self._hist_kernel + 1
        histories = obs[None, :, (2, 3), None, :]
        # einsum("bcl,oc->bol") with c == 1 is a plain broadcast product.
        hist = histories[..., 0:out_length] * self._hist_w_off[0]
        for offset in range(1, self._hist_kernel):
            hist += (
                histories[..., offset : offset + out_length]
                * self._hist_w_off[offset]
            )
        hist = hist + self._hist_b_e
        hist = np.where(hist > 0, hist, 0.0).reshape(members, batch, -1)
        # Sizes convolution.
        sizes_length = self.num_bitrates - self._sizes_kernel + 1
        sizes_x = obs[None, :, None, 4, : self.num_bitrates]
        sizes = sizes_x[..., 0:sizes_length] * self._sizes_w_off[0]
        for offset in range(1, self._sizes_kernel):
            sizes += (
                sizes_x[..., offset : offset + sizes_length]
                * self._sizes_w_off[offset]
            )
        sizes = sizes + self._sizes_b_e
        sizes = np.where(sizes > 0, sizes, 0.0).reshape(members, batch, -1)
        merged = np.concatenate([ys, hist, sizes], axis=2)
        features = np.matmul(merged, self._merge_w) + self._merge_b_e
        return np.where(features > 0, features, 0.0)


class StackedActorEnsemble:
    """All ensemble members' action distributions in one forward pass."""

    def __init__(self, actors: list[ActorNetwork]) -> None:
        if not actors:
            raise ModelError("need at least one actor to stack")
        self.actors = list(actors)
        self._trunk = _StackedTrunk([actor.trunk for actor in actors])
        self._stack_heads()

    def _stack_heads(self) -> None:
        self._head_w = np.stack([actor.head.weight for actor in self.actors])
        self._head_b = np.stack([actor.head.bias for actor in self.actors])

    def refresh(self) -> None:
        """Re-snapshot member weights after in-place mutation."""
        self._trunk.refresh()
        self._stack_heads()

    def probabilities(self, observation: np.ndarray) -> np.ndarray:
        """Every member's softmax distribution for one observation,
        shape ``(members, num_actions)``."""
        features = self._trunk.features(observation)
        logits = np.matmul(features, self._head_w) + self._head_b[:, None, :]
        return softmax(logits)[:, 0, :]


class StackedCriticEnsemble:
    """All ensemble members' value estimates in one forward pass."""

    def __init__(self, critics: list[CriticNetwork]) -> None:
        if not critics:
            raise ModelError("need at least one critic to stack")
        self.critics = list(critics)
        self._trunk = _StackedTrunk([critic.trunk for critic in critics])
        self._stack_heads()

    def _stack_heads(self) -> None:
        self._head_w = np.stack([critic.head.weight for critic in self.critics])
        self._head_b = np.stack([critic.head.bias for critic in self.critics])

    def refresh(self) -> None:
        """Re-snapshot member weights after in-place mutation."""
        self._trunk.refresh()
        self._stack_heads()

    def values(self, observation: np.ndarray) -> np.ndarray:
        """Every member's value estimate for one observation, shape
        ``(members,)``."""
        features = self._trunk.features(observation)
        values = np.matmul(features, self._head_w) + self._head_b[:, None, :]
        return values[:, 0, 0]