"""Batched passes over an ensemble of identically shaped networks.

The paper's ``U_pi``/``U_V`` signals query all five ensemble members at
every decision step.  Looping over five :class:`Sequential` forwards pays
the full per-layer Python overhead five times for five tiny matmuls; here
the member weights are stacked once at construction into ``(members, ...)``
arrays so one fused pass answers for the whole ensemble.

Two families live here:

* :class:`StackedActorEnsemble` / :class:`StackedCriticEnsemble` —
  *evaluation-time* snapshots for the per-step uncertainty signals
  (forward only, weights copied at construction, :meth:`refresh` after
  in-place mutation).
* :class:`StackedTrainingNetwork` — the *training-time* stack behind the
  lockstep ensemble trainer: trainable :class:`repro.nn.layers.StackedDense`
  / :class:`repro.nn.layers.StackedConv1D` parameters with full batched
  backward passes, a fused per-step ``lockstep_outputs`` forward for
  synchronous rollouts, and :meth:`StackedTrainingNetwork.write_back` to
  copy the trained weights into the member networks.

Every operation is arranged so that member *m*'s slice goes through
exactly the arithmetic of its own network — stacked ``matmul`` dispatches
one GEMM per member slice, the convolution einsums keep their contraction
order, and the single-input-channel convolutions are one-term sums — so
both families are **bitwise identical** to the member-by-member loop
(asserted by the regression tests).
"""

from __future__ import annotations

import numpy as np

from repro.abr.state import S_INFO, S_LEN
from repro.errors import ModelError
from repro.nn.layers import ReLU, StackedConv1D, StackedDense
from repro.nn.losses import softmax
from repro.pensieve.model import ActorNetwork, CriticNetwork, PensieveTrunk

__all__ = [
    "StackedActorEnsemble",
    "StackedCriticEnsemble",
    "StackedTrainingNetwork",
]


class _StackedTrunk:
    """Member-stacked weights of structurally identical trunks."""

    def __init__(self, trunks: list[PensieveTrunk]) -> None:
        if not trunks:
            raise ModelError("need at least one trunk to stack")
        first = trunks[0]
        for trunk in trunks[1:]:
            if (
                trunk.num_bitrates != first.num_bitrates
                or trunk.filters != first.filters
                or trunk.hidden != first.hidden
            ):
                raise ModelError(
                    "cannot stack trunks with different architectures"
                )
        self.trunks = list(trunks)
        self.num_bitrates = first.num_bitrates
        self.refresh()

    def refresh(self) -> None:
        """Re-snapshot the member weights (after in-place mutation)."""
        trunks = self.trunks
        # Scalar branches: Dense(1, F) weights as (M, 3, F).
        self._dense_w = np.stack(
            [
                [branch.layers[0].weight[0] for branch in t._branches[:3]]
                for t in trunks
            ]
        )
        self._dense_b = np.stack(
            [[branch.layers[0].bias for branch in t._branches[:3]] for t in trunks]
        )
        # History convolutions (throughput, delay): (M, 2, O, K).
        self._hist_w = np.stack(
            [
                [
                    t._conv_throughput.layers[0].weight[:, 0, :],
                    t._conv_delay.layers[0].weight[:, 0, :],
                ]
                for t in trunks
            ]
        )
        self._hist_b = np.stack(
            [
                [t._conv_throughput.layers[0].bias, t._conv_delay.layers[0].bias]
                for t in trunks
            ]
        )
        self._hist_kernel = trunks[0]._conv_throughput.layers[0].kernel_size
        # Next-chunk-sizes convolution: (M, O, K).
        self._sizes_w = np.stack(
            [t._conv_sizes.layers[0].weight[:, 0, :] for t in trunks]
        )
        self._sizes_b = np.stack([t._conv_sizes.layers[0].bias for t in trunks])
        self._sizes_kernel = trunks[0]._conv_sizes.layers[0].kernel_size
        # Merge layer: (M, merged, H).
        self._merge_w = np.stack([t._merge.layers[0].weight for t in trunks])
        self._merge_b = np.stack([t._merge.layers[0].bias for t in trunks])
        # Broadcast-ready copies so features() does no per-call reshaping.
        self._dense_w_e = np.ascontiguousarray(self._dense_w[:, None])
        self._dense_b_e = np.ascontiguousarray(self._dense_b[:, None])
        self._hist_w_off = [
            np.ascontiguousarray(self._hist_w[:, None, :, :, offset, None])
            for offset in range(self._hist_kernel)
        ]
        self._hist_b_e = np.ascontiguousarray(self._hist_b[:, None, :, :, None])
        self._sizes_w_off = [
            np.ascontiguousarray(self._sizes_w[:, None, :, offset, None])
            for offset in range(self._sizes_kernel)
        ]
        self._sizes_b_e = np.ascontiguousarray(self._sizes_b[:, None, :, None])
        self._merge_b_e = np.ascontiguousarray(self._merge_b[:, None, :])

    def features(self, observations: np.ndarray) -> np.ndarray:
        """Map ``(batch, 6, 8)`` observations to ``(members, batch, hidden)``."""
        obs = np.asarray(observations, dtype=float)
        if obs.ndim == 2:
            obs = obs[None, :, :]
        if obs.ndim != 3 or obs.shape[1:] != (S_INFO, S_LEN):
            raise ModelError(
                f"expected (batch, {S_INFO}, {S_LEN}) observations, got {obs.shape}"
            )
        batch = obs.shape[0]
        members = self._dense_w.shape[0]
        # Scalars: one-term matmuls as a broadcast multiply-add.
        scalars = obs[:, (0, 1, 5), -1]
        ys = scalars[None, :, :, None] * self._dense_w_e + self._dense_b_e
        ys = np.where(ys > 0, ys, 0.0).reshape(members, batch, -1)
        # History convolutions, both branches and all members in one loop.
        # Accumulating from the first term instead of zeros only ever flips
        # the sign of an exact zero, which the ReLU below maps to +0.0
        # either way, so the post-ReLU floats match the member loop.
        out_length = S_LEN - self._hist_kernel + 1
        histories = obs[None, :, (2, 3), None, :]
        # einsum("bcl,oc->bol") with c == 1 is a plain broadcast product.
        hist = histories[..., 0:out_length] * self._hist_w_off[0]
        for offset in range(1, self._hist_kernel):
            hist += (
                histories[..., offset : offset + out_length]
                * self._hist_w_off[offset]
            )
        hist = hist + self._hist_b_e
        hist = np.where(hist > 0, hist, 0.0).reshape(members, batch, -1)
        # Sizes convolution.
        sizes_length = self.num_bitrates - self._sizes_kernel + 1
        sizes_x = obs[None, :, None, 4, : self.num_bitrates]
        sizes = sizes_x[..., 0:sizes_length] * self._sizes_w_off[0]
        for offset in range(1, self._sizes_kernel):
            sizes += (
                sizes_x[..., offset : offset + sizes_length]
                * self._sizes_w_off[offset]
            )
        sizes = sizes + self._sizes_b_e
        sizes = np.where(sizes > 0, sizes, 0.0).reshape(members, batch, -1)
        merged = np.concatenate([ys, hist, sizes], axis=2)
        features = np.matmul(merged, self._merge_w) + self._merge_b_e
        return np.where(features > 0, features, 0.0)


class StackedActorEnsemble:
    """All ensemble members' action distributions in one forward pass."""

    def __init__(self, actors: list[ActorNetwork]) -> None:
        if not actors:
            raise ModelError("need at least one actor to stack")
        self.actors = list(actors)
        self._trunk = _StackedTrunk([actor.trunk for actor in actors])
        self._stack_heads()

    def _stack_heads(self) -> None:
        self._head_w = np.stack([actor.head.weight for actor in self.actors])
        self._head_b = np.stack([actor.head.bias for actor in self.actors])

    def refresh(self) -> None:
        """Re-snapshot member weights after in-place mutation."""
        self._trunk.refresh()
        self._stack_heads()

    def probabilities(self, observation: np.ndarray) -> np.ndarray:
        """Every member's softmax distribution for one observation,
        shape ``(members, num_actions)``."""
        features = self._trunk.features(observation)
        logits = np.matmul(features, self._head_w) + self._head_b[:, None, :]
        return softmax(logits)[:, 0, :]

    def probabilities_batch(self, observations: np.ndarray) -> np.ndarray:
        """Every member's distribution for a ``(batch, 6, 8)`` stack,
        shape ``(members, batch, num_actions)``.

        The serve engine feeds one observation per concurrent session
        through here.  Row ``i`` equals :meth:`probabilities` of
        observation ``i`` up to the last ulp: BLAS accumulation order in
        the trunk's merge matmul depends on the batch shape, so exact
        bitwise equality holds only at matching batch sizes.
        """
        features = self._trunk.features(observations)
        logits = np.matmul(features, self._head_w) + self._head_b[:, None, :]
        return softmax(logits)


class StackedCriticEnsemble:
    """All ensemble members' value estimates in one forward pass."""

    def __init__(self, critics: list[CriticNetwork]) -> None:
        if not critics:
            raise ModelError("need at least one critic to stack")
        self.critics = list(critics)
        self._trunk = _StackedTrunk([critic.trunk for critic in critics])
        self._stack_heads()

    def _stack_heads(self) -> None:
        self._head_w = np.stack([critic.head.weight for critic in self.critics])
        self._head_b = np.stack([critic.head.bias for critic in self.critics])

    def refresh(self) -> None:
        """Re-snapshot member weights after in-place mutation."""
        self._trunk.refresh()
        self._stack_heads()

    def values(self, observation: np.ndarray) -> np.ndarray:
        """Every member's value estimate for one observation, shape
        ``(members,)``."""
        features = self._trunk.features(observation)
        values = np.matmul(features, self._head_w) + self._head_b[:, None, :]
        return values[:, 0, 0]

    def values_batch(self, observations: np.ndarray) -> np.ndarray:
        """Every member's estimate for a ``(batch, 6, 8)`` stack, shape
        ``(members, batch)``.

        Same contract as
        :meth:`StackedActorEnsemble.probabilities_batch`: equal to the
        per-observation forward up to BLAS batch-shape accumulation
        (last-ulp differences at mismatched batch sizes).
        """
        features = self._trunk.features(observations)
        values = np.matmul(features, self._head_w) + self._head_b[:, None, :]
        return values[:, :, 0]


class _StackedTrainingTrunk:
    """Trainable member-stacked :class:`PensieveTrunk`.

    Unlike :class:`_StackedTrunk` (an inference snapshot), this owns
    trainable :class:`StackedDense` / :class:`StackedConv1D` parameters
    initialized from the member trunks, runs full forward **and** backward
    passes over ``(members, batch, 6, 8)`` observation stacks, and writes
    the trained weights back into the member trunks on demand.  Layer
    order, branch order, and every einsum/matmul mirror
    :meth:`PensieveTrunk.forward` / :meth:`PensieveTrunk.backward`
    member-for-member, so training through this trunk is bitwise identical
    to training each member separately.
    """

    #: Observation rows feeding the three scalar branches, in branch order.
    _SCALAR_ROWS = (0, 1, 5)

    def __init__(self, trunks: list[PensieveTrunk]) -> None:
        if not trunks:
            raise ModelError("need at least one trunk to stack")
        first = trunks[0]
        for trunk in trunks[1:]:
            if (
                trunk.num_bitrates != first.num_bitrates
                or trunk.filters != first.filters
                or trunk.hidden != first.hidden
            ):
                raise ModelError("cannot stack trunks with different architectures")
        self.trunks = list(trunks)
        self.num_bitrates = first.num_bitrates
        self.members = len(trunks)
        self._scalar_layers = [
            StackedDense.from_layers([t._branches[i].layers[0] for t in trunks])
            for i in range(3)
        ]
        self._scalar_relus = [ReLU() for _ in range(3)]
        self._conv_layers = [
            StackedConv1D.from_layers([t._branches[i].layers[0] for t in trunks])
            for i in range(3, 6)
        ]
        self._conv_relus = [ReLU() for _ in range(3)]
        self._merge = StackedDense.from_layers([t._merge.layers[0] for t in trunks])
        self._merge_relu = ReLU()
        self._conv_shapes: list[tuple[int, ...]] = []
        self._split_points: list[int] | None = None

    @property
    def params(self) -> list[np.ndarray]:
        """Stacked parameters, branches first, merge layer last (the same
        order as :attr:`PensieveTrunk.params` per member)."""
        params = [p for layer in self._scalar_layers for p in layer.params]
        params += [p for layer in self._conv_layers for p in layer.params]
        return params + self._merge.params

    @property
    def grads(self) -> list[np.ndarray]:
        """Gradient accumulators aligned with :attr:`params`."""
        grads = [g for layer in self._scalar_layers for g in layer.grads]
        grads += [g for layer in self._conv_layers for g in layer.grads]
        return grads + self._merge.grads

    def zero_grads(self) -> None:
        """Reset all gradient accumulators."""
        for grad in self.grads:
            grad[...] = 0.0

    def forward(self, observations: np.ndarray) -> np.ndarray:
        """Map ``(members, batch, 6, 8)`` stacks to ``(members, batch, hidden)``."""
        obs = np.asarray(observations, dtype=float)
        if obs.ndim != 4 or obs.shape[0] != self.members or obs.shape[2:] != (
            S_INFO,
            S_LEN,
        ):
            raise ModelError(
                f"expected ({self.members}, batch, {S_INFO}, {S_LEN}) "
                f"observations, got {obs.shape}"
            )
        outputs = []
        for layer, relu, row in zip(
            self._scalar_layers, self._scalar_relus, self._SCALAR_ROWS
        ):
            outputs.append(relu.forward(layer.forward(obs[:, :, row, -1:])))
        conv_inputs = (
            obs[:, :, 2, None, :],
            obs[:, :, 3, None, :],
            obs[:, :, 4, None, : self.num_bitrates],
        )
        self._conv_shapes = []
        for layer, relu, x in zip(self._conv_layers, self._conv_relus, conv_inputs):
            out = relu.forward(layer.forward(x))
            self._conv_shapes.append(out.shape)
            outputs.append(out.reshape(out.shape[0], out.shape[1], -1))
        widths = [out.shape[2] for out in outputs]
        self._split_points = list(np.cumsum(widths)[:-1])
        return self._merge_relu.forward(
            self._merge.forward(np.concatenate(outputs, axis=2))
        )

    def backward(self, grad_features: np.ndarray) -> None:
        """Backpropagate through the merge layer and every branch.

        Input gradients are not needed (observations are data), so nothing
        is returned and the convolution branches skip their input-gradient
        einsums entirely; parameter gradients accumulate in place.
        """
        if self._split_points is None:
            raise ModelError("backward called before forward")
        grad_concat = self._merge.backward(self._merge_relu.backward(grad_features))
        pieces = np.split(grad_concat, self._split_points, axis=2)
        for layer, relu, piece in zip(self._scalar_layers, self._scalar_relus, pieces[:3]):
            layer.backward(relu.backward(piece))
        for layer, relu, piece, shape in zip(
            self._conv_layers, self._conv_relus, pieces[3:], self._conv_shapes
        ):
            layer.backward(relu.backward(piece.reshape(shape)), input_grad=False)

    def write_back(self) -> None:
        """Copy the trained stacked parameters into the member trunks."""
        for index, layer in enumerate(self._scalar_layers):
            layer.write_back([t._branches[index].layers[0] for t in self.trunks])
        for offset, layer in enumerate(self._conv_layers):
            layer.write_back([t._branches[3 + offset].layers[0] for t in self.trunks])
        self._merge.write_back([t._merge.layers[0] for t in self.trunks])


class StackedTrainingNetwork:
    """Trainable member-stacked actor (or critic) networks.

    The engine room of the lockstep ensemble trainer: wraps ``M``
    structurally identical :class:`ActorNetwork`s or
    :class:`CriticNetwork`s, copies their parameters into member-stacked
    arrays, and exposes

    * :meth:`outputs` / :meth:`backward` — full batched forward/backward
      over ``(members, batch, 6, 8)`` observation stacks (one stacked
      matmul or einsum per layer instead of ``M`` separate passes),
    * :meth:`lockstep_outputs` — a fused, cache-free per-step forward for
      synchronous rollouts, reading the live stacked weights,
    * :meth:`write_back` — copy the trained weights into the member
      networks when training finishes.

    Member *m*'s slice goes through exactly the floats of its own network,
    so stacked training is bitwise identical to the member-by-member loop
    (asserted by the regression tests and ``tools/bench_training.py``).
    """

    def __init__(self, networks: list[ActorNetwork] | list[CriticNetwork]) -> None:
        if not networks:
            raise ModelError("need at least one network to stack")
        self.networks = list(networks)
        self._trunk = _StackedTrainingTrunk([n.trunk for n in self.networks])
        self._head = StackedDense.from_layers([n.head for n in self.networks])

    @property
    def members(self) -> int:
        """How many member networks are stacked."""
        return len(self.networks)

    @property
    def params(self) -> list[np.ndarray]:
        """Stacked trainable parameters (trunk first, head last)."""
        return self._trunk.params + self._head.params

    @property
    def grads(self) -> list[np.ndarray]:
        """Gradient accumulators aligned with :attr:`params`."""
        return self._trunk.grads + self._head.grads

    def zero_grads(self) -> None:
        """Reset all gradient accumulators."""
        self._trunk.zero_grads()
        for grad in self._head.grads:
            grad[...] = 0.0

    def outputs(self, observations: np.ndarray) -> np.ndarray:
        """Head outputs for ``(members, batch, 6, 8)`` observation stacks:
        ``(members, batch, num_actions)`` logits for actors, ``(members,
        batch, 1)`` values for critics."""
        return self._head.forward(self._trunk.forward(observations))

    def backward(self, grad_outputs: np.ndarray) -> None:
        """Backpropagate a gradient on the head outputs through head and
        trunk, accumulating stacked parameter gradients in place."""
        self._trunk.backward(self._head.backward(grad_outputs))

    def lockstep_outputs(self, observations: np.ndarray) -> np.ndarray:
        """Fused per-step forward: ``(members, 6, 8)`` — one current
        observation per member — to ``(members, head_out)`` outputs.

        Mirrors :meth:`PensieveTrunk.features_inference` per member (the
        single-input-channel convolutions as broadcast multiplies, the
        one-term scalar matmuls as multiply-adds, first-term accumulator
        seeding) against the live stacked training weights, so the floats
        equal each member's own inference forward — and therefore the
        reference rollout's — exactly.
        """
        obs = np.asarray(observations, dtype=float)
        trunk = self._trunk
        if obs.ndim != 3 or obs.shape[0] != trunk.members or obs.shape[1:] != (
            S_INFO,
            S_LEN,
        ):
            raise ModelError(
                f"expected ({trunk.members}, {S_INFO}, {S_LEN}) observations, "
                f"got {obs.shape}"
            )
        parts = []
        for layer, row in zip(trunk._scalar_layers, trunk._SCALAR_ROWS):
            y = obs[:, row, -1, None] * layer.weight[:, 0, :] + layer.bias
            parts.append(np.where(y > 0, y, 0.0))
        conv_inputs = (
            obs[:, 2, :],
            obs[:, 3, :],
            obs[:, 4, : trunk.num_bitrates],
        )
        for layer, x in zip(trunk._conv_layers, conv_inputs):
            weight = layer.weight
            out_length = x.shape[1] - layer.kernel_size + 1
            # einsum("bcl,oc->bol") with c == 1 is a plain broadcast
            # product; first-term seeding only affects zero signs, which
            # the ReLU normalizes (same argument as features_inference).
            out = x[:, None, 0:out_length] * weight[:, :, 0, 0, None]
            for offset in range(1, layer.kernel_size):
                out += (
                    x[:, None, offset : offset + out_length]
                    * weight[:, :, 0, offset, None]
                )
            out = out + layer.bias[:, :, None]
            parts.append(np.where(out > 0, out, 0.0).reshape(obs.shape[0], -1))
        merged = np.concatenate(parts, axis=1)
        features = (
            np.matmul(merged[:, None, :], trunk._merge.weight)[:, 0, :]
            + trunk._merge.bias
        )
        features = np.where(features > 0, features, 0.0)
        return (
            np.matmul(features[:, None, :], self._head.weight)[:, 0, :]
            + self._head.bias
        )

    def write_back(self) -> None:
        """Copy the trained stacked parameters into the member networks."""
        self._trunk.write_back()
        self._head.write_back([n.head for n in self.networks])