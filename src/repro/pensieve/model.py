"""Pensieve's actor and critic networks.

Architecture (faithful to [27] at configurable width): the ``(6, 8)``
observation matrix is split into its semantic parts, each processed by its
own branch —

* scalars (last bitrate, buffer level, chunks remaining): one dense unit
  layer each,
* history vectors (throughput, download time): 1-D convolution over the 8
  past chunks,
* next-chunk sizes: 1-D convolution over the ladder,

— then concatenated and merged through a dense hidden layer.  The actor
puts a softmax over ladder rungs on top; the critic a single linear unit.

Gradients flow through every branch via the :mod:`repro.nn` layers; the
trunk exposes flat parameter/gradient lists so the optimizers can treat the
whole network uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.abr.state import S_INFO, S_LEN
from repro.errors import ModelError
from repro.nn.layers import Conv1D, Dense, Flatten, ReLU
from repro.nn.losses import softmax
from repro.nn.network import Sequential
from repro.perf import fast_paths_enabled

__all__ = ["PensieveTrunk", "ActorNetwork", "CriticNetwork"]

_CONV_KERNEL = 4


class PensieveTrunk:
    """Shared feature extractor: branch-per-row, concatenate, merge."""

    def __init__(
        self,
        num_bitrates: int,
        rng: np.random.Generator,
        filters: int = 16,
        hidden: int = 64,
    ) -> None:
        if num_bitrates < 2:
            raise ModelError(f"need >= 2 bitrates, got {num_bitrates}")
        if filters < 1 or hidden < 1:
            raise ModelError(
                f"filters and hidden must be positive, got ({filters}, {hidden})"
            )
        if num_bitrates < _CONV_KERNEL:
            raise ModelError(
                f"ladder of {num_bitrates} rungs shorter than conv kernel "
                f"{_CONV_KERNEL}"
            )
        self.num_bitrates = num_bitrates
        self.filters = filters
        self.hidden = hidden
        self._scalar_bitrate = Sequential([Dense(1, filters, rng), ReLU()])
        self._scalar_buffer = Sequential([Dense(1, filters, rng), ReLU()])
        self._scalar_remaining = Sequential([Dense(1, filters, rng), ReLU()])
        self._conv_throughput = Sequential(
            [Conv1D(1, filters, _CONV_KERNEL, rng), ReLU(), Flatten()]
        )
        self._conv_delay = Sequential(
            [Conv1D(1, filters, _CONV_KERNEL, rng), ReLU(), Flatten()]
        )
        self._conv_sizes = Sequential(
            [Conv1D(1, filters, _CONV_KERNEL, rng), ReLU(), Flatten()]
        )
        history_features = filters * (S_LEN - _CONV_KERNEL + 1)
        size_features = filters * (num_bitrates - _CONV_KERNEL + 1)
        merged = 3 * filters + 2 * history_features + size_features
        self._merge = Sequential([Dense(merged, hidden, rng), ReLU()])
        self._branches = [
            self._scalar_bitrate,
            self._scalar_buffer,
            self._scalar_remaining,
            self._conv_throughput,
            self._conv_delay,
            self._conv_sizes,
        ]
        self._split_points: list[int] | None = None

    @property
    def params(self) -> list[np.ndarray]:
        """All trainable parameters, branches first, merge layer last."""
        params = [p for branch in self._branches for p in branch.params]
        return params + self._merge.params

    @property
    def grads(self) -> list[np.ndarray]:
        """Gradient accumulators aligned with :attr:`params`."""
        grads = [g for branch in self._branches for g in branch.grads]
        return grads + self._merge.grads

    def zero_grads(self) -> None:
        """Reset all gradient accumulators."""
        for branch in self._branches:
            branch.zero_grads()
        self._merge.zero_grads()

    def forward(self, observations: np.ndarray) -> np.ndarray:
        """Map a ``(batch, 6, 8)`` observation batch to ``(batch, hidden)``."""
        obs = np.asarray(observations, dtype=float)
        if obs.ndim == 2:
            obs = obs[None, :, :]
        if obs.ndim != 3 or obs.shape[1:] != (S_INFO, S_LEN):
            raise ModelError(
                f"expected (batch, {S_INFO}, {S_LEN}) observations, got {obs.shape}"
            )
        batch = obs.shape[0]
        outputs = [
            self._scalar_bitrate.forward(obs[:, 0, -1:].reshape(batch, 1)),
            self._scalar_buffer.forward(obs[:, 1, -1:].reshape(batch, 1)),
            self._scalar_remaining.forward(obs[:, 5, -1:].reshape(batch, 1)),
            self._conv_throughput.forward(obs[:, 2, :].reshape(batch, 1, S_LEN)),
            self._conv_delay.forward(obs[:, 3, :].reshape(batch, 1, S_LEN)),
            self._conv_sizes.forward(
                obs[:, 4, : self.num_bitrates].reshape(batch, 1, self.num_bitrates)
            ),
        ]
        widths = [out.shape[1] for out in outputs]
        self._split_points = list(np.cumsum(widths)[:-1])
        return self._merge.forward(np.concatenate(outputs, axis=1))

    def backward(self, grad_features: np.ndarray) -> None:
        """Backpropagate through the merge layer and every branch.

        Input gradients are not needed (observations are data), so nothing
        is returned; parameter gradients are accumulated in place.
        """
        if self._split_points is None:
            raise ModelError("backward called before forward")
        grad_concat = self._merge.backward(grad_features)
        pieces = np.split(grad_concat, self._split_points, axis=1)
        for branch, piece in zip(self._branches, pieces):
            branch.backward(piece)

    def features_inference(self, observations: np.ndarray) -> np.ndarray:
        """Gradient-free forward pass, bitwise-identical to :meth:`forward`.

        Performs the same arithmetic as the layer objects but fused into
        one function: no per-layer dispatch, no backward caches, and the
        single-input-channel convolutions reduced to broadcast multiplies
        (a one-term sum, so the floats are exactly those of the einsum).
        Reads the live weights on every call, so it never goes stale under
        in-situ adaptation.
        """
        obs = np.asarray(observations, dtype=float)
        if obs.ndim == 2:
            obs = obs[None, :, :]
        if obs.ndim != 3 or obs.shape[1:] != (S_INFO, S_LEN):
            raise ModelError(
                f"expected (batch, {S_INFO}, {S_LEN}) observations, got {obs.shape}"
            )
        batch = obs.shape[0]
        # The three scalar branches are Dense(1, F): a one-term matmul, so
        # all three reduce to a single broadcast multiply-add.  Flattening
        # (batch, 3, F) row-major reproduces their concatenation order.
        # Weight gathers use preallocated buffers instead of np.stack: this
        # runs per decision step, and np.stack's shape bookkeeping costs
        # more than the arithmetic on arrays this small.
        scalars = obs[:, (0, 1, 5), -1]
        branches = self._branches
        filters = branches[0].layers[0].weight.shape[1]
        dense_w = np.empty((3, filters))
        dense_b = np.empty((3, filters))
        for i in range(3):
            dense_w[i] = branches[i].layers[0].weight[0]
            dense_b[i] = branches[i].layers[0].bias
        ys = scalars[:, :, None] * dense_w[None] + dense_b[None]
        ys = np.where(ys > 0, ys, 0.0).reshape(batch, -1)
        # The throughput and delay convolutions share their input shape, so
        # both history branches run as one broadcast offset loop; the
        # ladder-length sizes branch keeps its own.  Seeding the accumulator
        # with the first offset term instead of zeros can only flip the sign
        # of an exact zero, which the ReLU maps to +0.0 either way.
        throughput_conv = self._conv_throughput.layers[0]
        delay_conv = self._conv_delay.layers[0]
        kernel = throughput_conv.kernel_size
        out_length = S_LEN - kernel + 1
        histories = obs[:, (2, 3), None, :]
        out_channels = throughput_conv.weight.shape[0]
        conv_w = np.empty((2, out_channels, kernel))
        conv_w[0] = throughput_conv.weight[:, 0, :]
        conv_w[1] = delay_conv.weight[:, 0, :]
        conv_b = np.empty((2, out_channels))
        conv_b[0] = throughput_conv.bias
        conv_b[1] = delay_conv.bias
        # einsum("bcl,oc->bol") with c == 1 is a plain broadcast product.
        out = histories[..., 0:out_length] * conv_w[None, :, :, 0, None]
        for offset in range(1, kernel):
            out += (
                histories[..., offset : offset + out_length]
                * conv_w[None, :, :, offset, None]
            )
        out = out + conv_b[None, :, :, None]
        out = np.where(out > 0, out, 0.0).reshape(batch, -1)
        sizes = _conv_relu_flat(
            obs[:, 4, : self.num_bitrates].reshape(batch, 1, self.num_bitrates),
            self._conv_sizes,
        )
        return _dense_relu(np.concatenate([ys, out, sizes], axis=1), self._merge)


def _export_params(params: list[np.ndarray]) -> dict[str, np.ndarray]:
    """Index-keyed parameter copies, the on-disk ``.npz`` weight layout."""
    return {f"p{index}": param.copy() for index, param in enumerate(params)}


def _import_params(params: list[np.ndarray], arrays) -> None:
    """Shape-checked in-place load of an :func:`_export_params` mapping."""
    for index, param in enumerate(params):
        key = f"p{index}"
        if key not in arrays:
            raise ModelError(f"weight arrays missing parameter {key}")
        value = np.asarray(arrays[key], dtype=float)
        if value.shape != param.shape:
            raise ModelError(
                f"parameter {key} shape {value.shape} != expected {param.shape}"
            )
        param[...] = value


def _dense_relu(x: np.ndarray, branch: Sequential) -> np.ndarray:
    """Fused Dense->ReLU with the exact arithmetic of the layer objects."""
    dense = branch.layers[0]
    y = x @ dense.weight + dense.bias
    return np.where(y > 0, y, 0.0)


def _conv_relu_flat(x: np.ndarray, branch: Sequential) -> np.ndarray:
    """Fused Conv1D->ReLU->Flatten for single-input-channel convolutions."""
    conv = branch.layers[0]
    out_length = x.shape[2] - conv.kernel_size + 1
    # einsum("bcl,oc->bol") with c == 1 is a plain broadcast product; the
    # first-term seed vs. a zeros accumulator only affects zero signs,
    # which the ReLU normalizes.
    out = x[:, :, 0:out_length] * conv.weight[None, :, 0, 0, None]
    for offset in range(1, conv.kernel_size):
        out += x[:, :, offset : offset + out_length] * conv.weight[None, :, 0, offset, None]
    out = out + conv.bias[None, :, None]
    out = np.where(out > 0, out, 0.0)
    return out.reshape(x.shape[0], -1)


class ActorNetwork:
    """Policy network: trunk features -> softmax over ladder rungs."""

    def __init__(
        self,
        num_bitrates: int,
        rng: np.random.Generator,
        filters: int = 16,
        hidden: int = 64,
    ) -> None:
        self.trunk = PensieveTrunk(num_bitrates, rng, filters=filters, hidden=hidden)
        self.head = Dense(hidden, num_bitrates, rng)

    @property
    def params(self) -> list[np.ndarray]:
        return self.trunk.params + self.head.params

    @property
    def grads(self) -> list[np.ndarray]:
        return self.trunk.grads + self.head.grads

    def zero_grads(self) -> None:
        """Reset the gradient accumulators of trunk and head."""
        self.trunk.zero_grads()
        self.head.zero_grads()

    def logits(self, observations: np.ndarray) -> np.ndarray:
        """Unnormalized action scores, shape ``(batch, num_bitrates)``."""
        return self.head.forward(self.trunk.forward(observations))

    def probabilities(self, observations: np.ndarray) -> np.ndarray:
        """Action distribution per observation."""
        return softmax(self.logits(observations))

    def probabilities_inference(self, observations: np.ndarray) -> np.ndarray:
        """Gradient-free action distribution, bitwise-identical to
        :meth:`probabilities` but through the fused trunk forward.

        Falls back to the layer-by-layer path when the fast paths are
        globally disabled (see :mod:`repro.perf`).
        """
        if not fast_paths_enabled():
            return self.probabilities(observations)
        features = self.trunk.features_inference(observations)
        return softmax(features @ self.head.weight + self.head.bias)

    def backward(self, grad_logits: np.ndarray) -> None:
        """Backpropagate a gradient on the logits through head and trunk."""
        self.trunk.backward(self.head.backward(grad_logits))

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Index-keyed copies of every parameter, for ``.npz`` persistence
        (see :meth:`repro.experiments.artifacts.ArtifactCache.store_arrays`)."""
        return _export_params(self.params)

    def load_state_arrays(self, arrays) -> None:
        """Shape-checked in-place load of a :meth:`state_arrays` mapping."""
        _import_params(self.params, arrays)


class CriticNetwork:
    """Value network: trunk features -> scalar state value."""

    def __init__(
        self,
        num_bitrates: int,
        rng: np.random.Generator,
        filters: int = 16,
        hidden: int = 64,
    ) -> None:
        self.trunk = PensieveTrunk(num_bitrates, rng, filters=filters, hidden=hidden)
        self.head = Dense(hidden, 1, rng)

    @property
    def params(self) -> list[np.ndarray]:
        return self.trunk.params + self.head.params

    @property
    def grads(self) -> list[np.ndarray]:
        return self.trunk.grads + self.head.grads

    def zero_grads(self) -> None:
        """Reset the gradient accumulators of trunk and head."""
        self.trunk.zero_grads()
        self.head.zero_grads()

    def values(self, observations: np.ndarray) -> np.ndarray:
        """State values, shape ``(batch,)``."""
        return self.head.forward(self.trunk.forward(observations))[:, 0]

    def values_inference(self, observations: np.ndarray) -> np.ndarray:
        """Gradient-free state values, bitwise-identical to :meth:`values`
        but through the fused trunk forward (see :mod:`repro.perf`)."""
        if not fast_paths_enabled():
            return self.values(observations)
        features = self.trunk.features_inference(observations)
        return (features @ self.head.weight + self.head.bias)[:, 0]

    def backward(self, grad_values: np.ndarray) -> None:
        """Backpropagate a gradient on the scalar values."""
        grad = np.asarray(grad_values, dtype=float).reshape(-1, 1)
        self.trunk.backward(self.head.backward(grad))

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Index-keyed copies of every parameter, for ``.npz`` persistence
        (see :meth:`repro.experiments.artifacts.ArtifactCache.store_arrays`)."""
        return _export_params(self.params)

    def load_state_arrays(self, arrays) -> None:
        """Shape-checked in-place load of a :meth:`state_arrays` mapping."""
        _import_params(self.params, arrays)
