"""Epoch-granular training checkpoints for crash-safe ensemble builds.

Training a safety suite is the pipeline's longest uninterruptible stretch:
a kill at epoch 799 of 800 used to throw the whole ensemble away.  This
module makes both training engines resumable at epoch boundaries with
**bitwise-identical** results — the restored run replays the exact float
sequence of an uninterrupted one, because a checkpoint captures the full
training state:

* the network parameters (actor and critic),
* the RMSProp mean-square accumulators,
* the trainers' RNG states (``Generator.bit_generator.state``),
* the per-epoch summaries and the number of completed epochs.

Checkpoints are stored through the existing
:class:`~repro.experiments.artifacts.ArtifactCache` fingerprint scheme as
one atomically replaced ``.npz`` per trainer (the meta JSON rides inside
the archive, so state and description cannot tear apart), so they live
next to the final weight artifacts they will become, keyed by the same
training fingerprint, and are invalidated by exactly the same config
changes.  :data:`CHECKPOINT_SCHEMA_VERSION` guards the layout: a loader
never tries to interpret a checkpoint written by an incompatible version.

Cadence resolves from an explicit ``checkpoint_every`` argument or the
``REPRO_CHECKPOINT_EVERY`` environment variable (0 disables, the
default).  The final epoch is always checkpointed, so an ensemble killed
between members resumes its completed members instantly; once the
combined weight artifact is stored the member checkpoints are discarded.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro import obs
from repro.errors import CheckpointError
from repro.util.serialization import to_jsonable

if TYPE_CHECKING:  # imported lazily to avoid a package-import cycle
    from repro.experiments.artifacts import ArtifactCache

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CHECKPOINT_EVERY_ENV",
    "Checkpointer",
    "resolve_checkpoint_every",
    "require",
]

CHECKPOINT_SCHEMA_VERSION = 1
"""On-disk checkpoint layout version, stamped into every meta payload.

Bump whenever the checkpoint format changes incompatibly; old checkpoints
then fail validation and training restarts from epoch 0 instead of
resuming from state it would misread."""

#: Environment variable consulted when ``checkpoint_every`` is not given.
CHECKPOINT_EVERY_ENV = "REPRO_CHECKPOINT_EVERY"


def resolve_checkpoint_every(checkpoint_every: int | None = None) -> int:
    """Resolve the checkpoint cadence in epochs (0 = disabled).

    Precedence: a positive explicit argument, then the
    ``REPRO_CHECKPOINT_EVERY`` environment variable, then 0 — so
    checkpointing is opt-in and a cadence set by the CLI's ``--resume``
    reaches every engine (including forked workers, which inherit the
    environment).
    """
    if checkpoint_every is not None and checkpoint_every < 0:
        raise CheckpointError(
            f"checkpoint_every must be >= 0, got {checkpoint_every}"
        )
    if checkpoint_every:
        return checkpoint_every
    env = os.environ.get(CHECKPOINT_EVERY_ENV, "").strip()
    if not env:
        return 0
    try:
        value = int(env)
    except ValueError as exc:
        raise CheckpointError(
            f"{CHECKPOINT_EVERY_ENV} must be a non-negative integer, got {env!r}"
        ) from exc
    if value < 0:
        raise CheckpointError(
            f"{CHECKPOINT_EVERY_ENV} must be >= 0, got {value}"
        )
    return value


def require(meta: Mapping[str, Any], **expected: Any) -> None:
    """Validate checkpoint *meta* against the running trainer's identity.

    Raises :class:`CheckpointError` naming the first mismatching field.
    The schema version is always checked; callers add the fields that
    pin a checkpoint to one trainer (engine, seeds, total epochs), so a
    checkpoint can never silently resume the wrong run.
    """
    schema = meta.get("schema")
    if schema != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint schema {schema!r} != supported "
            f"{CHECKPOINT_SCHEMA_VERSION}"
        )
    for field, value in expected.items():
        found = meta.get(field)
        if found != value:
            raise CheckpointError(
                f"checkpoint {field} mismatch: saved {found!r}, "
                f"trainer expects {value!r}"
            )


class Checkpointer:
    """Saves and loads one trainer's checkpoint through an artifact cache.

    One instance is bound to one ``(cache, artifact name)`` pair — e.g.
    the lockstep agent-ensemble checkpoint of one training distribution —
    and owns the cadence decision: :meth:`due` is true every *every*
    epochs and always at the final epoch.
    """

    def __init__(self, cache: "ArtifactCache", artifact: str, every: int) -> None:
        if every < 1:
            raise CheckpointError(f"checkpoint cadence must be >= 1, got {every}")
        self.cache = cache
        self.artifact = artifact
        self.every = every

    def due(self, epochs_completed: int, epochs_total: int) -> bool:
        """Whether a checkpoint should be written after this epoch."""
        if epochs_completed < 1:
            return False
        return (
            epochs_completed % self.every == 0
            or epochs_completed == epochs_total
        )

    #: Reserved array key holding the JSON-encoded meta payload.
    META_KEY = "__checkpoint_meta__"

    def load(self) -> tuple[dict, dict[str, np.ndarray]] | None:
        """The saved ``(meta, arrays)``, or ``None`` when absent.

        A schema mismatch or a malformed meta raises
        :class:`CheckpointError`; callers then validate trainer identity
        with :func:`require` before restoring.
        """
        if not self.cache.has_arrays(self.artifact):
            return None
        arrays = self.cache.load_arrays(self.artifact)
        encoded = arrays.pop(self.META_KEY, None)
        if encoded is None:
            raise CheckpointError(
                f"checkpoint {self.artifact!r} has no embedded meta"
            )
        try:
            meta = json.loads(str(np.asarray(encoded)[()]))
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint {self.artifact!r} meta is corrupt: {exc}"
            ) from exc
        if not isinstance(meta, dict):
            raise CheckpointError(
                f"checkpoint {self.artifact!r} meta is not a mapping"
            )
        require(meta)
        if obs.enabled():
            obs.inc("checkpoint.resumes", artifact=self.artifact)
            obs.event(
                "checkpoint.resume",
                artifact=self.artifact,
                epochs_completed=meta.get("epochs_completed"),
                engine=meta.get("engine"),
            )
        return meta, arrays

    def save(self, meta: Mapping[str, Any], arrays: Mapping[str, np.ndarray]) -> None:
        """Persist a checkpoint as one atomically replaced ``.npz``.

        The meta rides *inside* the archive (JSON-encoded under
        :data:`META_KEY`), so state and its description can never tear
        apart: a kill mid-save leaves the previous complete checkpoint in
        place, never a half-written or mixed-generation one.
        """
        if self.META_KEY in meta or self.META_KEY in arrays:
            raise CheckpointError(
                f"{self.META_KEY!r} is reserved for the checkpoint layer"
            )
        stamped = dict(meta)
        stamped["schema"] = CHECKPOINT_SCHEMA_VERSION
        payload = dict(arrays)
        payload[self.META_KEY] = np.asarray(
            json.dumps(to_jsonable(stamped), sort_keys=True)
        )
        self.cache.store_arrays(self.artifact, payload)
        if obs.enabled():
            obs.inc("checkpoint.saves", artifact=self.artifact)
            obs.event(
                "checkpoint.save",
                artifact=self.artifact,
                epochs_completed=stamped.get("epochs_completed"),
                engine=stamped.get("engine"),
            )

    def discard(self) -> None:
        """Remove the checkpoint (called once its run completed and the
        final weight artifact exists)."""
        if self.cache.discard_arrays(self.artifact) and obs.enabled():
            obs.inc("checkpoint.discards", artifact=self.artifact)
            obs.event("checkpoint.discard", artifact=self.artifact)
