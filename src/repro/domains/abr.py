"""The ABR domain: adaptive-bitrate video streaming, registered as ``abr``.

The original workload of this reproduction, wrapped behind the
:class:`~repro.domains.base.Domain` interface so the serve engine, the
service, and the tools reach it the same way they reach every other
domain.  :class:`ABRSessionFactory` reproduces exactly the per-session
wiring the serve engine used to inline (``ABREnv`` construction order,
``SessionResult``/``ChunkRecord`` field extraction), which is what keeps
post-refactor ABR trajectories bitwise-identical to the pre-refactor
engine (asserted by the equivalence sweep).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.abr.env import ABREnv
from repro.abr.session import ChunkRecord, SessionResult
from repro.core.ensemble_signals import PolicyEnsembleSignal
from repro.core.thresholding import VarianceTrigger
from repro.domains.base import (
    DOMAINS,
    DemoScheme,
    Domain,
    LinearSoftmaxPolicy,
    SessionFactory,
    SessionSpec,
)
from repro.errors import ConfigError
from repro.mdp.interfaces import StepResult
from repro.policies.buffer_based import BufferBasedPolicy
from repro.traces.dataset import DATASET_NAMES, DatasetSplit, make_dataset
from repro.video.envivio import envivio_dash3_manifest
from repro.video.manifest import VideoManifest
from repro.video.qoe import QoEMetric

__all__ = ["ABRDomain", "ABRSessionFactory"]

#: The demo scheme's calibrated variance threshold (the historical
#: ``build_demo_scheme`` default).
_DEMO_ALPHA = 0.12


@dataclass(frozen=True)
class ABRSessionFactory(SessionFactory):
    """Session wiring for ABR: one video manifest, one QoE metric."""

    manifest: VideoManifest
    qoe_metric: QoEMetric | None = None

    domain = "abr"

    def steps_per_session(self) -> int:
        """Agent-controlled chunks: the first is fetched at the lowest rung."""
        return self.manifest.num_chunks - 1

    def new_env(self, spec: SessionSpec) -> ABREnv:
        return ABREnv(
            manifest=self.manifest,
            trace=spec.trace,
            qoe_metric=self.qoe_metric,
            start_offset_s=spec.start_offset_s,
        )

    def new_result(self, spec: SessionSpec, policy_name: str) -> SessionResult:
        return SessionResult(
            trace_name=spec.trace.name, policy_name=policy_name
        )

    def record(self, step: StepResult, defaulted: bool) -> ChunkRecord:
        info = step.info
        return ChunkRecord(
            chunk_index=info["chunk_index"],
            bitrate_index=info["bitrate_index"],
            bitrate_mbps=info["bitrate_mbps"],
            rebuffer_s=info["rebuffer_s"],
            download_time_s=info["download_time_s"],
            throughput_mbps=info["throughput_mbps"],
            buffer_s=info["buffer_s"],
            reward=step.reward,
            defaulted=defaulted,
        )


@DOMAINS.register("abr")
class ABRDomain(Domain):
    """Adaptive-bitrate streaming over the standard Envivio manifest."""

    key = "abr"

    def dataset_names(self) -> tuple[str, ...]:
        return tuple(DATASET_NAMES)

    def load_split(
        self,
        dataset: str,
        num_traces: int = 20,
        duration_s: float = 1200.0,
        seed: int = 0,
    ) -> DatasetSplit:
        return make_dataset(
            dataset, num_traces=num_traces, duration_s=duration_s, seed=seed
        ).split()

    def session_factory(
        self,
        manifest: VideoManifest | None = None,
        qoe_metric: QoEMetric | None = None,
    ) -> ABRSessionFactory:
        if manifest is None:
            manifest = envivio_dash3_manifest(repeats=1)
        return ABRSessionFactory(manifest=manifest, qoe_metric=qoe_metric)

    def demo_scheme(
        self,
        alpha: float | None = None,
        ensemble_size: int = 4,
        seed: int = 0,
        name: str = "demo",
    ) -> DemoScheme:
        """The seeded linear-softmax ``U_pi`` scheme over Envivio + BBA.

        Construction order and seeding are the service layer's
        historical ``build_demo_scheme`` exactly (learned at ``seed+1``,
        members at ``seed+10+i``), so existing demo trajectories are
        unchanged by the domain refactor.
        """
        if ensemble_size < 2:
            raise ConfigError(
                f"ensemble_size must be >= 2, got {ensemble_size}"
            )
        if alpha is None:
            alpha = _DEMO_ALPHA
        manifest = envivio_dash3_manifest(repeats=1)
        num_actions = len(manifest.bitrates_kbps)
        num_features = int(np.prod((6, 8)))
        learned = LinearSoftmaxPolicy(seed + 1, num_actions, num_features)
        default = BufferBasedPolicy(manifest.bitrates_kbps)
        members = [
            LinearSoftmaxPolicy(seed + 10 + index, num_actions, num_features)
            for index in range(ensemble_size)
        ]
        signal = PolicyEnsembleSignal(members, trim=1)
        trigger = VarianceTrigger(alpha=alpha, k=3, l=1)
        return DemoScheme(
            name=name,
            learned=learned,
            default=default,
            signal=signal,
            trigger=trigger,
            factory=ABRSessionFactory(manifest=manifest),
        )

    def throughput_of(self, observation: np.ndarray) -> float:
        """The latest measured throughput from the ``(6, 8)`` state.

        Row 2 holds normalized throughput history (newest last), scaled
        by 8 Mbit/s — the same extraction
        :class:`~repro.core.novelty_signal.StateNoveltySignal` performs
        by default for ABR observations.
        """
        return float(np.asarray(observation)[2, -1]) * 8.0

    # --- ABR-specific extras (trained artifacts) ------------------------

    def build_suite(self, *args, **kwargs):
        """Run the full offline phase: delegates to
        :func:`repro.abr.suite.build_safety_suite`."""
        from repro.abr.suite import build_safety_suite

        return build_safety_suite(*args, **kwargs)

    def collect_training_throughputs(self, *args, **kwargs):
        """Raw ``U_S`` training series: delegates to
        :func:`repro.abr.suite.collect_training_throughputs`."""
        from repro.abr.suite import collect_training_throughputs

        return collect_training_throughputs(*args, **kwargs)
