"""Deterministic distribution-shift scenario generators.

The monitors in this repository exist to catch the moment a deployment
leaves its training distribution; this module is the corpus of such
moments.  Each scenario is a pure function ``(trace, seed, severity) ->
ShiftedTrace`` that perturbs a bandwidth trace — the substrate both
registered domains stream — into a specific shift shape:

* ``abrupt_shift`` — capacity collapses at a random onset and stays down
  (the paper's "unseen network conditions" case, sharpened).
* ``slow_drift``  — capacity ramps down linearly from an onset, the
  hardest case for windowed triggers.
* ``cyclic_load`` — a diurnal-style sinusoidal load swing from t=0.
* ``burst_storm`` — short repeated outages (cross traffic storms).
* ``trace_splice`` — the tail is spliced with a shuffled, scaled copy of
  the trace itself (plausible marginals, broken temporal structure).

Determinism is a hard contract, property-tested per generator: the same
``(trace, seed, severity)`` always yields a bitwise-identical perturbed
trace, and different seeds diverge.  All randomness comes from one
``numpy`` generator seeded at entry; nothing reads global state.

Scenarios register in :data:`SCENARIOS` by key so sweeps
(``tools/scenario_matrix.py``) can enumerate them; the
:class:`ShiftedTrace` they return carries ``onset_s`` — when the shift
begins — which is what turns a monitor's first post-onset default into a
detection latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.signals import ComponentRegistry
from repro.errors import ConfigError
from repro.traces.trace import Trace

__all__ = [
    "SCENARIOS",
    "ShiftedTrace",
    "apply_scenario",
    "scenario_keys",
]

#: Bandwidths are floored here after perturbation (matches the minimum
#: the trace generators themselves enforce).
_MIN_BANDWIDTH_MBPS = 0.01

#: The scenario registry: generator functions keyed by scenario name.
SCENARIOS = ComponentRegistry("distribution-shift scenario")


@dataclass(frozen=True)
class ShiftedTrace:
    """A perturbed trace plus the moment its shift begins.

    ``onset_s`` is in trace time (the same clock as ``trace.times``);
    steps at or after it are "post-shift" when scoring detection
    latency.  Scenarios active from the first sample report onset 0.
    """

    trace: Trace
    onset_s: float


def _finish(
    trace: Trace, bandwidths: np.ndarray, key: str, seed: int, onset_s: float
) -> ShiftedTrace:
    shifted = Trace(
        times=trace.times.copy(),
        bandwidths_mbps=np.maximum(bandwidths, _MIN_BANDWIDTH_MBPS),
        name=f"{trace.name}+{key}@{seed}",
    )
    return ShiftedTrace(trace=shifted, onset_s=float(onset_s))


def _check_severity(severity: float) -> float:
    if not 0.0 < severity <= 1.0:
        raise ConfigError(
            f"severity must be in (0, 1], got {severity}"
        )
    return float(severity)


@SCENARIOS.register("abrupt_shift")
def abrupt_shift(
    trace: Trace, seed: int = 0, severity: float = 1.0
) -> ShiftedTrace:
    """Capacity collapses at a random onset and never recovers."""
    severity = _check_severity(severity)
    rng = np.random.default_rng(seed)
    onset = trace.times[0] + trace.duration * rng.uniform(0.25, 0.5)
    drop = 1.0 - severity * rng.uniform(0.7, 0.85)
    bandwidths = trace.bandwidths_mbps.copy()
    bandwidths[trace.times >= onset] *= drop
    return _finish(trace, bandwidths, "abrupt_shift", seed, onset)


@SCENARIOS.register("slow_drift")
def slow_drift(
    trace: Trace, seed: int = 0, severity: float = 1.0
) -> ShiftedTrace:
    """Capacity ramps down linearly from an onset to the trace end."""
    severity = _check_severity(severity)
    rng = np.random.default_rng(seed)
    onset = trace.times[0] + trace.duration * rng.uniform(0.2, 0.4)
    final = 1.0 - severity * rng.uniform(0.6, 0.8)
    span = trace.times[-1] - onset
    progress = np.clip((trace.times - onset) / span, 0.0, 1.0)
    bandwidths = trace.bandwidths_mbps * (1.0 - (1.0 - final) * progress)
    return _finish(trace, bandwidths, "slow_drift", seed, onset)


@SCENARIOS.register("cyclic_load")
def cyclic_load(
    trace: Trace, seed: int = 0, severity: float = 1.0
) -> ShiftedTrace:
    """A diurnal-style sinusoidal load swing over the whole trace."""
    severity = _check_severity(severity)
    rng = np.random.default_rng(seed)
    period = trace.duration * rng.uniform(0.2, 0.45)
    phase = rng.uniform(0.0, 2.0 * np.pi)
    depth = 0.5 * severity
    swing = np.sin(2.0 * np.pi * trace.times / period + phase)
    bandwidths = trace.bandwidths_mbps * (1.0 - depth * (0.5 + 0.5 * swing))
    return _finish(trace, bandwidths, "cyclic_load", seed, trace.times[0])


@SCENARIOS.register("burst_storm")
def burst_storm(
    trace: Trace, seed: int = 0, severity: float = 1.0
) -> ShiftedTrace:
    """Short repeated capacity outages (cross-traffic storms)."""
    severity = _check_severity(severity)
    rng = np.random.default_rng(seed)
    num_bursts = 3 + int(round(3 * severity))
    starts = np.sort(
        trace.times[0] + trace.duration * rng.uniform(0.2, 0.95, num_bursts)
    )
    widths = trace.duration * rng.uniform(0.02, 0.05, num_bursts)
    floor = 1.0 - severity * rng.uniform(0.85, 0.95)
    bandwidths = trace.bandwidths_mbps.copy()
    for start, width in zip(starts, widths):
        inside = (trace.times >= start) & (trace.times < start + width)
        bandwidths[inside] *= floor
    return _finish(trace, bandwidths, "burst_storm", seed, starts[0])


@SCENARIOS.register("trace_splice")
def trace_splice(
    trace: Trace, seed: int = 0, severity: float = 1.0
) -> ShiftedTrace:
    """Splice the tail with a shuffled, scaled copy of the trace itself.

    The marginal bandwidth distribution stays plausible; the temporal
    structure (and the level, by ``severity``) breaks at the onset.
    """
    severity = _check_severity(severity)
    rng = np.random.default_rng(seed)
    onset = trace.times[0] + trace.duration * rng.uniform(0.3, 0.5)
    scale = 1.0 - severity * rng.uniform(0.4, 0.6)
    tail = trace.times >= onset
    donor = rng.permutation(trace.bandwidths_mbps)[: int(tail.sum())]
    bandwidths = trace.bandwidths_mbps.copy()
    bandwidths[tail] = donor * scale
    return _finish(trace, bandwidths, "trace_splice", seed, onset)


def apply_scenario(
    key: str, trace: Trace, seed: int = 0, severity: float = 1.0
) -> ShiftedTrace:
    """Perturb *trace* with the scenario registered under *key*.

    Raises :class:`~repro.errors.ConfigError` naming the registered
    scenarios when *key* is unknown.
    """
    return SCENARIOS.create(key, trace=trace, seed=seed, severity=severity)


def scenario_keys() -> tuple[str, ...]:
    """All registered scenario keys, sorted."""
    return SCENARIOS.keys()
