"""The congestion-control domain: a rate-control MDP, registered as ``cc``.

The second OSAP workload, built entirely on the existing
:mod:`repro.mdp` substrate: a sender picks one of eight sending rates
each control interval, a bottleneck link (driven by the same bandwidth
traces the ABR domain streams) delivers what capacity allows, queues a
bounded backlog, and drops the rest.  Observations are a short history
of (sent rate, delivered rate, loss fraction, queue delay); the reward
is PCC-Vivace-shaped — throughput minus loss and latency penalties.

The *learned* policy is a tabular Q-learning agent
(:func:`repro.mdp.qlearning.train_q_learning`) trained on in-distribution
traces; the *safe fallback* is a conservative rate rule (highest ladder
rate at most 80 % of the last delivered throughput).  The ``U_pi``
ensemble members are Q-agents with *randomized priors*: each starts from
a member-specific random Q-table, so training pulls well-visited entries
toward the common fixed point while rarely-visited entries keep their
priors — ensemble disagreement concentrates exactly where training data
was scarce, the tabular analogue of deep-ensemble epistemic uncertainty.
In-distribution the link is provisioned above the rate ladder
(:data:`TRACE_SCALE`), so sustained-congestion states are nearly
unvisited during training and light up the signal after a capacity
shift.  The trigger is a CUSUM (:class:`repro.core.strategies
.CusumTrigger`): rare one-step excursions into a lightly-visited state
bleed off against the drift, while the persistent post-shift elevation
accumulates and must fire.  Members are read at a softening temperature
through a fused gather+softmax (:class:`TabularEnsembleSignal`), so the
serve engine's batched signal path answers a whole wave in one
vectorized reduction — bitwise-identical to the per-session path
(tabular lanes are elementwise, with no batch-shape-dependent
accumulation).

Everything is deterministic given the seeds: the environment itself
draws no randomness, training consumes a seeded RNG, and trained tables
are cached per ``(seed, ensemble_size)`` so repeated scheme builds are
free.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.ensemble_signals import PolicyEnsembleSignal
from repro.core.strategies import CusumTrigger
from repro.domains.base import (
    DOMAINS,
    DemoScheme,
    Domain,
    MonitoredSessionResult,
    SessionFactory,
    SessionSpec,
)
from repro.errors import ConfigError, SimulationError
from repro.mdp.interfaces import StepResult
from repro.mdp.qlearning import QLearningAgent, train_q_learning
from repro.traces.dataset import DATASET_NAMES, DatasetSplit, make_dataset
from repro.traces.trace import Trace

__all__ = [
    "CCEnv",
    "CCDomain",
    "CCSessionFactory",
    "CCStateIndexer",
    "CCStepRecord",
    "ConservativeRatePolicy",
    "RATE_LADDER_MBPS",
    "TabularEnsembleSignal",
]

#: The discrete sending-rate ladder (Mbit/s).
RATE_LADDER_MBPS = np.array([0.3, 0.6, 1.2, 1.8, 2.4, 3.2, 4.2, 5.5])
#: Control-interval length: one decision every half second.
STEP_S = 0.5
#: Observation history length (control intervals).
HISTORY = 8
#: Normalizer for the rate rows of the observation.
RATE_SCALE = 6.0
#: Normalizer for the queue-delay row of the observation (seconds).
DELAY_SCALE = 2.0
#: The bottleneck queue holds at most this many seconds of capacity;
#: arrivals beyond it are dropped (loss).
QUEUE_CAPACITY_S = 1.0
#: Reward shaping (PCC-Vivace style): throughput minus these penalties.
LOSS_PENALTY = 2.0
DELAY_PENALTY = 0.5
#: Default decision steps per monitored session.
DEFAULT_HORIZON = 160
#: Softmax temperature the ensemble members are read at (greedy one-hot
#: distributions would hide inter-member Q-value disagreement).
MEMBER_TEMPERATURE = 0.5
#: Standard deviation of each member's randomized-prior Q-table.
PRIOR_SCALE = 1.0
#: The CC domain provisions link capacity at this multiple of the shared
#: trace corpus, putting the whole rate ladder under the in-distribution
#: link: sustained congestion then only occurs after a capacity shift,
#: which is what makes those states novel to the ensemble.
TRACE_SCALE = 2.5
#: The demo scheme's calibrated CUSUM threshold over the ``U_pi``
#: stream (~2x the largest in-distribution excursion; see
#: ``tools/scenario_matrix.py`` for the shifted-regime separation).
_DEMO_ALPHA = 10.0
#: CUSUM drift allowance, a little above the in-distribution mean
#: disagreement so benign excursions bleed off.
_DEMO_DRIFT = 0.6


class CCEnv:
    """A trace-driven bottleneck-link rate-control environment.

    Fully deterministic: capacity comes from the trace
    (:meth:`~repro.traces.trace.Trace.bandwidth_at`, wrapping), queueing
    is fluid (arrivals beyond the drain and a bounded backlog are
    dropped), and no randomness is drawn anywhere — the same action
    sequence always yields the same floats.  Episodes never terminate on
    their own; the session horizon is owned by
    :class:`CCSessionFactory`.
    """

    def __init__(self, trace: Trace, start_offset_s: float = 0.0) -> None:
        self.trace = trace
        self.start_offset_s = float(start_offset_s)
        self._history = np.zeros((4, HISTORY))
        self._time = self.start_offset_s
        self._queue_mbit = 0.0
        self._step_index = 0

    @property
    def num_actions(self) -> int:
        return int(RATE_LADDER_MBPS.size)

    def reset(self) -> np.ndarray:
        """Empty the queue and history and return the initial observation."""
        self._history = np.zeros((4, HISTORY))
        self._time = self.start_offset_s
        self._queue_mbit = 0.0
        self._step_index = 0
        return self._history.copy()

    def step(self, action: int) -> StepResult:
        """Send at ladder rung ``action`` for one interval of the fluid queue."""
        if not 0 <= int(action) < self.num_actions:
            raise SimulationError(
                f"action {action} outside rate ladder of {self.num_actions}"
            )
        rate = float(RATE_LADDER_MBPS[int(action)])
        capacity = self.trace.bandwidth_at(self._time)
        sent_mbit = rate * STEP_S
        # Fluid queue: arrivals join the backlog, the link drains one
        # interval of capacity, and anything beyond the bounded backlog
        # is dropped.
        self._queue_mbit += sent_mbit
        drained = min(self._queue_mbit, capacity * STEP_S)
        self._queue_mbit -= drained
        overflow = max(self._queue_mbit - capacity * QUEUE_CAPACITY_S, 0.0)
        self._queue_mbit -= overflow
        delivered_mbps = drained / STEP_S
        loss_fraction = min(overflow / sent_mbit, 1.0) if sent_mbit > 0 else 0.0
        queue_delay_s = self._queue_mbit / capacity
        reward = (
            delivered_mbps
            - LOSS_PENALTY * rate * loss_fraction
            - DELAY_PENALTY * queue_delay_s
        )
        self._history[:, :-1] = self._history[:, 1:]
        self._history[0, -1] = rate / RATE_SCALE
        self._history[1, -1] = delivered_mbps / RATE_SCALE
        self._history[2, -1] = loss_fraction
        self._history[3, -1] = queue_delay_s / DELAY_SCALE
        self._time += STEP_S
        self._step_index += 1
        return StepResult(
            observation=self._history.copy(),
            reward=reward,
            done=False,
            info={
                "step_index": self._step_index - 1,
                "rate_index": int(action),
                "rate_mbps": rate,
                "throughput_mbps": delivered_mbps,
                "loss_fraction": loss_fraction,
                "queue_delay_s": queue_delay_s,
                "capacity_mbps": capacity,
            },
        )


@dataclass(frozen=True)
class CCStepRecord:
    """Everything recorded about one control interval."""

    step_index: int
    rate_index: int
    rate_mbps: float
    throughput_mbps: float
    loss_fraction: float
    queue_delay_s: float
    reward: float
    defaulted: bool = False


@dataclass(frozen=True)
class CCSessionFactory(SessionFactory):
    """Session wiring for the congestion-control domain."""

    horizon: int = DEFAULT_HORIZON

    domain = "cc"

    def steps_per_session(self) -> int:
        return int(self.horizon)

    def new_env(self, spec: SessionSpec) -> CCEnv:
        return CCEnv(spec.trace, start_offset_s=spec.start_offset_s)

    def new_result(
        self, spec: SessionSpec, policy_name: str
    ) -> MonitoredSessionResult:
        return MonitoredSessionResult(
            trace_name=spec.trace.name, policy_name=policy_name
        )

    def record(self, step: StepResult, defaulted: bool) -> CCStepRecord:
        info = step.info
        return CCStepRecord(
            step_index=info["step_index"],
            rate_index=info["rate_index"],
            rate_mbps=info["rate_mbps"],
            throughput_mbps=info["throughput_mbps"],
            loss_fraction=info["loss_fraction"],
            queue_delay_s=info["queue_delay_s"],
            reward=step.reward,
            defaulted=defaulted,
        )


@dataclass(frozen=True)
class CCStateIndexer:
    """Discretize CC observations for the tabular learner.

    Bins the newest (delivered throughput, loss fraction, queue delay)
    sample: 9 throughput bins (the ladder's rungs via ``searchsorted``)
    x 3 loss bins x 3 delay bins = 81 states.  A plain picklable object
    (no closures) so trained agents ship to serve workers.
    """

    def __call__(self, observation: np.ndarray) -> int:
        observation = np.asarray(observation)
        delivered = float(observation[1, -1]) * RATE_SCALE
        loss = float(observation[2, -1])
        delay = float(observation[3, -1]) * DELAY_SCALE
        throughput_bin = int(np.searchsorted(RATE_LADDER_MBPS, delivered))
        loss_bin = 0 if loss <= 1e-9 else (1 if loss < 0.1 else 2)
        # Delay bins are deliberately coarse: a one-step queue from a
        # transient capacity dip stays in bin 0 (in-distribution), while
        # the persistently full post-shift queue (delay ~= the backlog
        # bound) lands in bin 2.
        delay_bin = 0 if delay < 0.3 else (1 if delay < 0.75 else 2)
        return (throughput_bin * 3 + loss_bin) * 3 + delay_bin


#: Number of discrete states :class:`CCStateIndexer` produces.
NUM_STATES = (RATE_LADDER_MBPS.size + 1) * 3 * 3


class ConservativeRatePolicy:
    """The safe fallback: never outrun what the link just delivered.

    Picks the highest ladder rate at most ``safety_factor`` x the last
    delivered throughput (the lowest rung when nothing was measured
    yet).  Deterministic and stateless, so one instance serves any
    number of concurrent sessions.
    """

    safety_factor = 0.8

    def reset(self) -> None:
        """No per-session state to reset."""

    def act(self, observation: np.ndarray, rng: np.random.Generator) -> int:
        """Highest rung at most ``safety_factor`` x the delivered rate."""
        delivered = float(np.asarray(observation)[1, -1]) * RATE_SCALE
        target = self.safety_factor * delivered
        index = int(np.searchsorted(RATE_LADDER_MBPS, target, side="right")) - 1
        return max(index, 0)

    def action_probabilities(self, observation: np.ndarray) -> np.ndarray:
        """One-hot distribution on the deterministically chosen rung."""
        probabilities = np.zeros(RATE_LADDER_MBPS.size)
        probabilities[self.act(observation, np.random.default_rng(0))] = 1.0
        return probabilities


class _StackedTabularPolicies:
    """A fused gather+softmax over tabular ensemble members.

    Duck-types the stacked-forward interface
    :class:`~repro.core.ensemble_signals.PolicyEnsembleSignal` expects of
    ``_stacked``: :meth:`probabilities` answers one observation for all
    members, :meth:`probabilities_batch` answers a whole serve wave.
    Every operation is an elementwise map or a fixed-length last-axis
    reduction, so batch values are bitwise-equal to the per-observation
    path regardless of batch shape (unlike the BLAS-backed neural
    ensembles, which only match to the last ulp).
    """

    def __init__(self, agents: list[QLearningAgent]) -> None:
        self.q_tables = np.stack([agent.q_table for agent in agents])
        self.indexer = agents[0].state_indexer
        self.temperature = float(agents[0].temperature)

    def _softmax(self, values: np.ndarray) -> np.ndarray:
        shifted = (values - values.max(axis=-1, keepdims=True)) / self.temperature
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)

    def probabilities(self, observation: np.ndarray) -> np.ndarray:
        """Each member's action distribution, ``(members, num_actions)``."""
        return self._softmax(self.q_tables[:, self.indexer(observation), :])

    def probabilities_batch(self, observations: np.ndarray) -> np.ndarray:
        """Distributions for one observation per concurrent session,
        ``(members, batch, num_actions)``."""
        states = np.fromiter(
            (self.indexer(observation) for observation in observations),
            dtype=np.intp,
            count=len(observations),
        )
        return self._softmax(self.q_tables[:, states, :])


class TabularEnsembleSignal(PolicyEnsembleSignal):
    """``U_pi`` over tabular Q-learning members, with a fused forward.

    The generic :class:`PolicyEnsembleSignal` only stacks Pensieve
    actors; this subclass supplies the tabular equivalent so the serve
    engine's one-forward-per-wave batching works for the CC domain too.
    Members must share the state indexer and a positive temperature
    (greedy one-hot outputs would make disagreement degenerate).
    """

    def __init__(self, agents: list[QLearningAgent], trim: int = 1) -> None:
        super().__init__(agents, trim=trim)
        first = agents[0]
        if not all(type(agent) is QLearningAgent for agent in agents):
            raise ConfigError("TabularEnsembleSignal needs QLearningAgent members")
        if any(agent.temperature != first.temperature for agent in agents):
            raise ConfigError("ensemble members must share one temperature")
        if first.temperature <= 0:
            raise ConfigError(
                "ensemble members need temperature > 0 for smooth distributions"
            )
        if any(agent.state_indexer is not first.state_indexer for agent in agents):
            if any(
                agent.state_indexer != first.state_indexer for agent in agents
            ):
                raise ConfigError("ensemble members must share one state indexer")
        self._stacked = _StackedTabularPolicies(self.agents)


class _CyclingTraceEnv:
    """Round-robin over training traces: each ``reset`` starts the next.

    Gives :func:`~repro.mdp.qlearning.train_q_learning` the whole
    training distribution through the single-environment interface it
    expects, deterministically.
    """

    def __init__(self, traces: list[Trace]) -> None:
        self._envs = [CCEnv(trace) for trace in traces]
        self._index = -1
        self._active = self._envs[0]

    @property
    def num_actions(self) -> int:
        return self._active.num_actions

    def reset(self) -> np.ndarray:
        self._index = (self._index + 1) % len(self._envs)
        self._active = self._envs[self._index]
        return self._active.reset()

    def step(self, action: int) -> StepResult:
        return self._active.step(action)


def _scaled_split(
    dataset: str, num_traces: int, duration_s: float, seed: int
) -> DatasetSplit:
    """A split of *dataset* with capacities provisioned by ``TRACE_SCALE``."""
    split = make_dataset(
        dataset, num_traces=num_traces, duration_s=duration_s, seed=seed
    ).split()
    return DatasetSplit(
        train=tuple(t.scaled(TRACE_SCALE, name=t.name) for t in split.train),
        validation=tuple(
            t.scaled(TRACE_SCALE, name=t.name) for t in split.validation
        ),
        test=tuple(t.scaled(TRACE_SCALE, name=t.name) for t in split.test),
    )


def _training_traces() -> list[Trace]:
    """The demo scheme's in-distribution training traces.

    The ``logistic`` corpus is the tight-band one (mu=4, scale=0.5);
    provisioned by :data:`TRACE_SCALE` the link stays above the whole
    rate ladder, so training never sees sustained congestion.
    """
    return list(
        _scaled_split("logistic", num_traces=8, duration_s=240.0, seed=101).train
    )


@lru_cache(maxsize=8)
def _demo_tables(
    seed: int, ensemble_size: int
) -> tuple[np.ndarray, tuple[np.ndarray, ...]]:
    """Trained Q-tables for one demo scheme, cached per configuration.

    The learned policy trains greedily from a zero table; each ensemble
    member trains from its own randomized prior with a slower learning
    rate (less stationary update noise on converged entries) and a
    sustained exploration floor (so every state the learned policy's
    trajectory touches in-distribution is well-visited by every member).
    """
    traces = _training_traces()

    def train(
        member_seed: int,
        learning_rate: float,
        episodes: int,
        epsilon_end: float,
        prior: bool,
    ) -> np.ndarray:
        initial_q = None
        if prior:
            initial_q = np.random.default_rng(member_seed).normal(
                scale=PRIOR_SCALE,
                size=(NUM_STATES, RATE_LADDER_MBPS.size),
            )
        agent = train_q_learning(
            _CyclingTraceEnv(traces),
            CCStateIndexer(),
            NUM_STATES,
            episodes=episodes,
            learning_rate=learning_rate,
            gamma=0.95,
            epsilon_end=epsilon_end,
            max_steps=DEFAULT_HORIZON,
            seed=member_seed,
            initial_q=initial_q,
        )
        return agent.q_table

    learned = train(
        seed + 1, learning_rate=0.2, episodes=300, epsilon_end=0.05, prior=False
    )
    members = tuple(
        train(
            seed + 10 + index,
            learning_rate=0.05,
            episodes=600,
            epsilon_end=0.25,
            prior=True,
        )
        for index in range(ensemble_size)
    )
    return learned, members


@DOMAINS.register("cc")
class CCDomain(Domain):
    """Congestion control over the shared bandwidth-trace datasets."""

    key = "cc"

    def dataset_names(self) -> tuple[str, ...]:
        return tuple(DATASET_NAMES)

    def load_split(
        self,
        dataset: str,
        num_traces: int = 20,
        duration_s: float = 1200.0,
        seed: int = 0,
    ) -> DatasetSplit:
        """A provisioned split: capacities scaled by :data:`TRACE_SCALE`.

        The shared trace corpus models last-mile links; this domain's
        bottleneck is provisioned above the rate ladder, so distribution
        shift (not everyday variation) is what causes congestion.
        """
        return _scaled_split(dataset, num_traces, duration_s, seed)

    def session_factory(self, horizon: int = DEFAULT_HORIZON) -> CCSessionFactory:
        if horizon < 1:
            raise ConfigError(f"horizon must be >= 1, got {horizon}")
        return CCSessionFactory(horizon=horizon)

    def demo_scheme(
        self,
        alpha: float | None = None,
        ensemble_size: int = 4,
        seed: int = 0,
        name: str = "demo",
    ) -> DemoScheme:
        """A trained ``U_pi`` scheme: randomized-prior Q ensemble + CUSUM.

        *alpha* is the CUSUM threshold here (each domain's demo scheme
        interprets the calibrated knob in its own trigger's terms).
        """
        if ensemble_size < 2:
            raise ConfigError(
                f"ensemble_size must be >= 2, got {ensemble_size}"
            )
        if alpha is None:
            alpha = _DEMO_ALPHA
        learned_table, member_tables = _demo_tables(int(seed), int(ensemble_size))
        indexer = CCStateIndexer()
        learned = QLearningAgent(learned_table, indexer)
        members = [
            QLearningAgent(table, indexer, temperature=MEMBER_TEMPERATURE)
            for table in member_tables
        ]
        signal = TabularEnsembleSignal(members, trim=1)
        trigger = CusumTrigger(threshold=alpha, drift=_DEMO_DRIFT)
        return DemoScheme(
            name=name,
            learned=learned,
            default=ConservativeRatePolicy(),
            signal=signal,
            trigger=trigger,
            factory=CCSessionFactory(),
        )

    def throughput_of(self, observation: np.ndarray) -> float:
        """The latest delivered throughput from the ``(4, 8)`` state."""
        return float(np.asarray(observation)[1, -1]) * RATE_SCALE
