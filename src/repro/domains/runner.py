"""Domain-generic session runners.

These are :func:`repro.abr.session.run_session` /
:func:`repro.abr.session.run_monitored_session` lifted over the
:class:`~repro.domains.base.SessionFactory` interface: the same loop,
the same decision ordering, the same observability output — with the
environment, the result object, and the per-step record supplied by the
domain instead of hard-wired to ABR.  For the ABR factory the runners
are bitwise-identical to the originals (asserted by the cross-path
equivalence sweep); for every other domain they *are* the serial
reference the serve engine's batched paths are checked against.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro import obs
from repro.core.monitor import SafetyMonitor
from repro.domains.base import SessionFactory, SessionSpec
from repro.errors import SimulationError
from repro.mdp.interfaces import Policy
from repro.util.rng import rng_from_seed

__all__ = ["run_monitored_session", "run_session"]


def _stream_session(
    select: Callable[[np.ndarray, np.random.Generator], tuple[int, bool | None]],
    factory: SessionFactory,
    spec: SessionSpec,
    policy_name: str,
):
    """The shared session loop behind both entry points.

    *select* makes one decision: it receives the observation and the
    session RNG and returns ``(action, defaulted)``, where ``defaulted``
    may be ``None`` to fall back to the environment's own flag.
    """
    watching = obs.enabled()
    start = time.perf_counter() if watching else 0.0
    env = factory.new_env(spec)
    rng = rng_from_seed(spec.seed)
    observation = env.reset()
    result = factory.new_result(spec, policy_name)
    for _ in range(factory.steps_per_session()):
        action, defaulted = select(observation, rng)
        result.observation_list.append(np.asarray(observation, dtype=float).copy())
        step = env.step(action)
        if defaulted is None:
            defaulted = bool(step.info.get("defaulted", False))
        result.chunks.append(factory.record(step, defaulted))
        observation = step.observation
        if step.done:
            break
    if not result.chunks:
        raise SimulationError("session produced no agent-controlled chunks")
    if watching:
        wall = time.perf_counter() - start
        obs.inc("session.runs", policy=result.policy_name)
        obs.observe("session.wall_seconds", wall, policy=result.policy_name)
        if wall > 0:
            obs.observe(
                "session.steps_per_second",
                len(result.chunks) / wall,
                policy=result.policy_name,
            )
    return result


def run_session(
    factory: SessionFactory,
    spec: SessionSpec,
    policy: Policy,
    policy_name: str | None = None,
):
    """Stream one full session of *factory*'s domain under *policy*.

    The policy decides every agent-controlled step; the complete
    per-step record comes back in the domain's result type.
    """
    policy.reset()

    def select(
        observation: np.ndarray, rng: np.random.Generator
    ) -> tuple[int, bool | None]:
        action = policy.act(observation, rng)
        if hasattr(policy, "last_decision_defaulted"):
            return action, bool(policy.last_decision_defaulted)
        return action, None

    return _stream_session(
        select, factory, spec, policy_name or type(policy).__name__
    )


def run_monitored_session(
    factory: SessionFactory,
    spec: SessionSpec,
    learned: Policy,
    default: Policy,
    monitor: SafetyMonitor,
    policy_name: str | None = None,
):
    """Stream one session with the monitor deciding who acts each step.

    The domain-generic form of
    :func:`repro.abr.session.run_monitored_session` — and the serial
    bitwise reference for every serve-engine path over this factory.
    """
    learned.reset()
    default.reset()
    monitor.reset()

    def select(
        observation: np.ndarray, rng: np.random.Generator
    ) -> tuple[int, bool | None]:
        decision = monitor.observe(observation)
        policy = default if decision.defaulted else learned
        return policy.act(observation, rng), decision.defaulted

    return _stream_session(select, factory, spec, policy_name or monitor.name)
