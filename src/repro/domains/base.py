"""The domain abstraction: what one learning-augmented workload plugs in.

The paper's claim is that uncertainty-triggered safety monitoring
generalizes across learning-augmented systems; this module is where the
repository states, in code, what a workload must provide for the whole
stack above :mod:`repro.core` — the serve engine, the multi-tenant
service, the experiment harnesses, the CLI — to run it unmodified:

* :class:`SessionSpec` — what one monitored session streams (a trace, a
  seed, a name).  Pure data, picklable, shared by every domain.
* :class:`SessionFactory` — the per-session wiring: build the seeded
  environment for a spec, produce the per-step record type, say how many
  decision steps a session has.  This is the only object the serve
  engine needs; it never sees an environment class directly.
* :class:`Domain` — the full workload description: dataset enumeration,
  split loading, a session factory, a self-contained demo scheme
  (learned policy + safe fallback + uncertainty signal + trigger), and
  the observation adapter (:meth:`Domain.throughput_of`) that lets the
  state-novelty signal ``U_S`` read a domain's observations.

Domains register in :data:`DOMAINS` under a stable string key
(``abr``, ``cc``); :func:`get_domain` constructs one by key and raises
an actionable :class:`~repro.errors.ConfigError` listing the registered
keys on a miss.  Layering: this package may import ``core``/``mdp`` and
the workload substrates (``abr``), but never ``serve``/``service`` —
those layers reach domains only through this registry
(``tools/check_layers.py`` enforces both directions).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.monitor import SafetyMonitor
from repro.core.signals import ComponentRegistry, UncertaintySignal
from repro.core.thresholding import DefaultTrigger
from repro.errors import SimulationError
from repro.mdp.interfaces import Environment, Policy, StepResult
from repro.traces.dataset import DatasetSplit
from repro.traces.trace import Trace

__all__ = [
    "DOMAINS",
    "DemoScheme",
    "Domain",
    "LinearSoftmaxPolicy",
    "MonitoredSessionResult",
    "SessionFactory",
    "SessionSpec",
    "domain_keys",
    "get_domain",
]


class SessionSpec:
    """What one monitored session streams: a trace, a seed, a name.

    Pure data (picklable), so a spec can be shipped to a worker process
    and produce the same floats there as in-process.  Domain-agnostic:
    every domain's factory interprets the same spec fields.
    """

    def __init__(
        self,
        trace: Trace,
        seed: int = 0,
        name: str | None = None,
        start_offset_s: float = 0.0,
    ) -> None:
        self.trace = trace
        self.seed = seed
        self.name = name
        self.start_offset_s = start_offset_s

    def __repr__(self) -> str:
        return (
            f"SessionSpec(trace={self.trace.name!r}, seed={self.seed}, "
            f"name={self.name!r})"
        )


class MonitoredSessionResult:
    """A generic per-session record: one entry in ``chunks`` per decision.

    The attribute names intentionally match
    :class:`repro.abr.session.SessionResult` (``chunks``,
    ``observation_list``, ``observations``, ``qoe``,
    ``default_fraction``) so the serve engine, the benchmarks, and the
    reporting tools read any domain's results through one surface.  The
    per-step record type is the domain's own (it only needs ``reward``
    and ``defaulted`` fields for the aggregates here).
    """

    def __init__(self, trace_name: str, policy_name: str) -> None:
        self.trace_name = trace_name
        self.policy_name = policy_name
        self.chunks: list = []
        self.observation_list: list[np.ndarray] = []
        self._observations_cache: np.ndarray | None = None
        self._observations_cache_length = -1

    def __len__(self) -> int:
        return len(self.chunks)

    @property
    def observations(self) -> np.ndarray:
        """The observations the policy acted on, stacked ``(T, ...)``."""
        if not self.observation_list:
            raise SimulationError("session recorded no observations")
        if (
            self._observations_cache is None
            or self._observations_cache_length != len(self.observation_list)
        ):
            self._observations_cache = np.stack(self.observation_list)
            self._observations_cache_length = len(self.observation_list)
        return self._observations_cache

    @property
    def qoe(self) -> float:
        """Total session reward (the domain's QoE analogue)."""
        return float(sum(record.reward for record in self.chunks))

    @property
    def default_fraction(self) -> float:
        """Fraction of decisions delegated to the default policy."""
        if not self.chunks:
            return 0.0
        return sum(1 for r in self.chunks if r.defaulted) / len(self.chunks)


class SessionFactory(ABC):
    """Per-session wiring for one domain: env, result, record, length.

    The serve engine and the generic runners are written against this
    interface alone — they construct environments and records without
    knowing the domain.  Factories must be picklable (they ship to shard
    worker processes inside the serving context) and stateless across
    sessions (one factory serves any number of concurrent sessions).
    """

    #: Registry key of the owning domain (``"abr"``, ``"cc"``, ...).
    domain: str = ""

    @abstractmethod
    def steps_per_session(self) -> int:
        """How many agent-controlled decision steps one session has."""

    @abstractmethod
    def new_env(self, spec: SessionSpec) -> Environment:
        """A fresh environment streaming *spec*'s trace."""

    @abstractmethod
    def new_result(self, spec: SessionSpec, policy_name: str):
        """An empty per-session result (``chunks``/``observation_list``)."""

    @abstractmethod
    def record(self, step: StepResult, defaulted: bool):
        """The domain's per-step record for one environment step."""


class LinearSoftmaxPolicy:
    """A deterministic seeded linear-softmax policy over flat features.

    The demo schemes' stand-in for a trained agent: logits are a fixed
    random linear map of the flattened observation, the action is the
    argmax, so trajectories are reproducible from the seed alone and
    need no artifacts on disk.
    """

    def __init__(self, seed: int, num_actions: int, num_features: int) -> None:
        self._weights = np.random.default_rng(seed).normal(
            size=(num_actions, num_features)
        )

    def reset(self) -> None:
        """No per-session state to reset."""

    def action_probabilities(self, observation: np.ndarray) -> np.ndarray:
        """Softmax over the linear logits of the flattened observation."""
        logits = self._weights @ np.asarray(observation, dtype=float).reshape(-1)
        logits -= logits.max()
        exp = np.exp(logits)
        return exp / exp.sum()

    def act(self, observation: np.ndarray, rng: np.random.Generator) -> int:
        """The argmax action (deterministic; *rng* is unused)."""
        return int(np.argmax(self.action_probabilities(observation)))


@dataclass(frozen=True)
class DemoScheme:
    """A self-contained monitored scheme a domain can hand out.

    Everything needed to serve monitored sessions without trained
    artifacts on disk: the learned policy, the safe fallback, the
    uncertainty signal, the trigger, and the session factory.  The
    service layer wraps one of these into a
    :class:`repro.service.schemes.SchemeRuntime`; tools drive it through
    the serve engine directly.
    """

    name: str
    learned: Policy
    default: Policy
    signal: UncertaintySignal
    trigger: DefaultTrigger
    factory: SessionFactory
    allow_revert: bool = False

    def monitor(self) -> SafetyMonitor:
        """A configured monitor prototype over this scheme."""
        return SafetyMonitor(
            self.signal,
            self.trigger,
            allow_revert=self.allow_revert,
            name=self.name,
        )


class Domain(ABC):
    """One learning-augmented workload, fully described.

    Implementations are cheap, stateless objects — anything expensive
    (training the demo policies) must be cached behind the methods, not
    done in ``__init__``, so that registry lookups stay free.
    """

    #: Stable registry key (matches the :data:`DOMAINS` registration).
    key: str = ""

    @abstractmethod
    def dataset_names(self) -> tuple[str, ...]:
        """The trace datasets this domain can stream, by name."""

    @abstractmethod
    def load_split(
        self,
        dataset: str,
        num_traces: int = 20,
        duration_s: float = 1200.0,
        seed: int = 0,
    ) -> DatasetSplit:
        """A deterministic train/validation/test split of *dataset*."""

    @abstractmethod
    def session_factory(self, **options) -> SessionFactory:
        """The domain's session factory (options are domain-specific)."""

    @abstractmethod
    def demo_scheme(
        self,
        alpha: float | None = None,
        ensemble_size: int = 4,
        seed: int = 0,
        name: str = "demo",
    ) -> DemoScheme:
        """A self-contained seeded ``U_pi`` scheme for demos and CI.

        ``alpha=None`` picks the domain's calibrated default threshold.
        Everything derives from *seed*, so any two processes build
        bitwise-identical schemes.
        """

    @abstractmethod
    def throughput_of(self, observation: np.ndarray) -> float:
        """Extract the latest raw throughput (Mbit/s) from an observation.

        The observation adapter for the state-novelty signal ``U_S``
        (:class:`repro.core.novelty_signal.StateNoveltySignal`'s
        ``throughput_of`` hook): each domain says where in its
        observation layout the measured throughput lives.
        """


#: The domain registry: implementations register their class under a
#: stable key; :func:`get_domain` constructs (and caches) instances.
DOMAINS = ComponentRegistry("domain")

_INSTANCES: dict[str, Domain] = {}


def get_domain(key: str) -> Domain:
    """The registered :class:`Domain` for *key*.

    Raises :class:`~repro.errors.ConfigError` naming the registered
    domains when *key* is unknown.  Instances are cached — domains are
    stateless, so one object serves every caller.
    """
    if key not in _INSTANCES:
        _INSTANCES[key] = DOMAINS.create(key)
    return _INSTANCES[key]


def domain_keys() -> tuple[str, ...]:
    """All registered domain keys, sorted."""
    return DOMAINS.keys()
