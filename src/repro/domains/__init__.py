"""``repro.domains`` — the pluggable workload layer.

One learning-augmented workload = one registered :class:`Domain`:
environment factory and seeded RNG wiring, per-step record type, safe
fallback policy, dataset enumeration, a self-contained demo scheme, and
the observation adapter the state-novelty signal needs.  The layers
above (``serve``, ``service``, the tools) dispatch on a domain key and
never import a workload module directly — ``tools/check_layers.py``
enforces that they reach this package only through its root.

Importing this package registers the built-in domains (``abr``, ``cc``)
and the distribution-shift scenario corpus; look them up with
:func:`get_domain` / :func:`repro.domains.scenarios.apply_scenario`.
"""

from repro.domains.base import (
    DOMAINS,
    DemoScheme,
    Domain,
    LinearSoftmaxPolicy,
    MonitoredSessionResult,
    SessionFactory,
    SessionSpec,
    domain_keys,
    get_domain,
)
from repro.domains.runner import run_monitored_session, run_session
from repro.domains.scenarios import (
    SCENARIOS,
    ShiftedTrace,
    apply_scenario,
    scenario_keys,
)

# Imported for their registry side effects: each module registers its
# Domain subclass in DOMAINS at import time.
from repro.domains import abr as _abr  # noqa: E402,F401
from repro.domains import cc as _cc  # noqa: E402,F401

__all__ = [
    "DOMAINS",
    "DemoScheme",
    "Domain",
    "LinearSoftmaxPolicy",
    "MonitoredSessionResult",
    "SCENARIOS",
    "SessionFactory",
    "SessionSpec",
    "ShiftedTrace",
    "apply_scenario",
    "domain_keys",
    "get_domain",
    "run_monitored_session",
    "run_session",
    "scenario_keys",
]
