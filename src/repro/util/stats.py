"""Small statistics helpers used throughout the library.

Includes Welford running moments, windowed mean/std features (the input
representation of the paper's ``U_S`` novelty signal), the paper's score
normalization (Random = 0, BB = 1), and empirical CDFs (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "RunningStats",
    "mean_std_window",
    "normalize_scores",
    "empirical_cdf",
    "summarize",
]


@dataclass
class RunningStats:
    """Numerically stable (Welford) running mean and variance.

    >>> stats = RunningStats()
    >>> for x in [1.0, 2.0, 3.0]:
    ...     stats.update(x)
    >>> stats.mean
    2.0
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)

    def update(self, value: float) -> None:
        """Fold one observation into the running moments."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def update_many(self, values: np.ndarray) -> None:
        """Fold a batch of observations into the running moments."""
        for value in np.asarray(values, dtype=float).ravel():
            self.update(float(value))

    @property
    def variance(self) -> float:
        """Population variance of the observations seen so far."""
        if self.count == 0:
            return 0.0
        return self._m2 / self.count

    @property
    def std(self) -> float:
        """Population standard deviation of the observations seen so far."""
        return float(np.sqrt(self.variance))


def mean_std_window(values: np.ndarray, window: int) -> tuple[float, float]:
    """Mean and standard deviation of the last *window* entries of *values*.

    This is the feature extractor used by the paper's ``U_S`` scheme: "the
    mean and standard deviation of the 10 most recent network throughputs".
    If fewer than *window* samples are available, all of them are used.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("cannot summarize an empty window")
    tail = arr[-window:]
    return float(tail.mean()), float(tail.std())


def normalize_scores(
    scores: np.ndarray | list[float],
    random_score: float,
    bb_score: float,
) -> np.ndarray:
    """Normalize QoE so that Random maps to 0 and Buffer-Based maps to 1.

    This is the normalization used in Figures 3-5 of the paper: "a
    performance value of 0 corresponds to Random's performance ... a
    performance of 1 corresponds to the gap between BB's performance and
    Random's performance".

    Raises :class:`ValueError` when BB and Random tie, because the gap that
    defines the unit of the scale is then zero.
    """
    gap = bb_score - random_score
    if gap == 0:
        raise ValueError("BB and Random scores coincide; normalization undefined")
    return (np.asarray(scores, dtype=float) - random_score) / gap


def empirical_cdf(values: np.ndarray | list[float]) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cumulative_fractions)`` for an empirical CDF.

    The fractions are ``i / n`` for the i-th smallest value (1-indexed), the
    convention used when plotting Figure 5.
    """
    arr = np.sort(np.asarray(values, dtype=float).ravel())
    if arr.size == 0:
        raise ValueError("cannot build a CDF from no samples")
    fractions = np.arange(1, arr.size + 1, dtype=float) / arr.size
    return arr, fractions


def summarize(values: np.ndarray | list[float]) -> dict[str, float]:
    """Max/min/mean/median summary, the statistics reported in Figure 4."""
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("cannot summarize no samples")
    return {
        "max": float(arr.max()),
        "min": float(arr.min()),
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
    }
