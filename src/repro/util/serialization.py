"""JSON / npz persistence helpers for experiment artifacts and models.

Artifacts are stored as plain JSON (for metadata and small results) plus
``.npz`` files (for arrays such as network weights), so that everything on
disk is inspectable without this library.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.errors import ArtifactError

__all__ = [
    "stable_hash",
    "to_jsonable",
    "save_text",
    "save_json",
    "load_json",
    "save_arrays",
    "load_arrays",
]


def to_jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays into JSON-friendly types."""
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(key): to_jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    return value


def stable_hash(payload: Mapping[str, Any]) -> str:
    """Deterministic short hash of a JSON-serializable mapping.

    Used to key the artifact cache by experiment configuration: the same
    configuration always maps to the same cache directory.
    """
    text = json.dumps(to_jsonable(dict(payload)), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def save_text(path: Path | str, text: str) -> None:
    """Write *text* to *path* atomically, creating parent directories.

    The write is atomic: the text goes to a uniquely named temporary
    file in the target directory and is moved into place with
    :func:`os.replace`, so a reader (or a crash, or a concurrent writer
    in another worker process) can never observe a half-written file.
    Every exported artifact — JSON results, metrics JSONL — goes through
    this one helper.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temporary = path.with_name(
        f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
    )
    try:
        temporary.write_text(text)
        os.replace(temporary, path)
    except BaseException:
        temporary.unlink(missing_ok=True)
        raise


def save_json(path: Path | str, payload: Any) -> None:
    """Write *payload* as pretty-printed JSON via the atomic
    :func:`save_text` helper."""
    save_text(path, json.dumps(to_jsonable(payload), indent=2, sort_keys=True))


def load_json(path: Path | str) -> Any:
    """Load JSON from *path*, raising :class:`ArtifactError` when absent."""
    path = Path(path)
    if not path.exists():
        raise ArtifactError(f"artifact not found: {path}")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"corrupt artifact {path}: {exc}") from exc


def save_arrays(path: Path | str, arrays: Mapping[str, np.ndarray]) -> None:
    """Persist a named collection of arrays as an ``.npz`` file.

    Atomic exactly like :func:`save_text`: the archive is written to a
    uniquely named temporary file and renamed into place, so a crash (or
    an injected worker kill) mid-write can never leave a truncated
    ``.npz`` behind — which is what makes training checkpoints safe to
    take at any epoch boundary.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temporary = path.with_name(
        f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
    )
    try:
        with open(temporary, "wb") as handle:
            np.savez(
                handle, **{key: np.asarray(val) for key, val in arrays.items()}
            )
        os.replace(temporary, path)
    except BaseException:
        temporary.unlink(missing_ok=True)
        raise


def load_arrays(path: Path | str) -> dict[str, np.ndarray]:
    """Load an ``.npz`` file saved by :func:`save_arrays`."""
    path = Path(path)
    if not path.exists():
        raise ArtifactError(f"artifact not found: {path}")
    with np.load(path) as data:
        return {key: data[key] for key in data.files}
