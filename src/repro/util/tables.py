"""Plain-text rendering of tables and simple figures.

The benchmark harness prints the same rows/series the paper's figures show;
these helpers format them readably in a terminal and in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_bar_chart", "render_cdf"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render a monospace table with aligned columns.

    Floats are formatted with *float_format*; everything else with ``str``.
    """

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [
        max(len(header), *(len(row[col]) for row in text_rows)) if text_rows else len(header)
        for col, header in enumerate(headers)
    ]
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def render_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
) -> str:
    """Render a horizontal ASCII bar chart (bars scaled to *width* chars).

    Negative values draw to the left of a zero axis so that the paper's
    "worse than Random" scores are visually distinct.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not values:
        return "(empty chart)"
    magnitude = max(abs(float(v)) for v in values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar_len = int(round(abs(value) / magnitude * width))
        bar = ("-" if value < 0 else "#") * bar_len
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.3f}")
    return "\n".join(lines)


def render_cdf(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    points: int = 5,
) -> str:
    """Render CDF series as a table of (value, fraction) sample points.

    *series* maps a scheme name to ``(sorted_values, fractions)`` as produced
    by :func:`repro.util.stats.empirical_cdf`.
    """
    lines = []
    for name, (values, fractions) in series.items():
        if len(values) == 0:
            raise ValueError(f"series {name!r} is empty")
        indices = [
            min(len(values) - 1, round(i * (len(values) - 1) / max(points - 1, 1)))
            for i in range(points)
        ]
        samples = ", ".join(
            f"({values[i]:.2f}, {fractions[i]:.2f})" for i in indices
        )
        lines.append(f"{name}: {samples}")
    return "\n".join(lines)
