"""Bootstrap confidence intervals for experiment summaries.

The paper reports point statistics (max/min/mean/median over 30 OOD
pairs); with a simulated substrate we can afford uncertainty estimates.
:func:`bootstrap_ci` resamples a statistic's sampling distribution and
reports a percentile interval; the report layer attaches intervals to the
Figure 4 summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.util.rng import rng_from_seed

__all__ = ["ConfidenceInterval", "bootstrap_ci"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a percentile-bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low


def bootstrap_ci(
    values: np.ndarray | list[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int | np.random.Generator | None = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap confidence interval for ``statistic(values)``.

    Resamples with replacement *resamples* times.  The point estimate is
    the statistic of the original sample, not of the resamples.
    """
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 10:
        raise ValueError(f"resamples must be >= 10, got {resamples}")
    rng = rng_from_seed(seed)
    indices = rng.integers(0, arr.size, size=(resamples, arr.size))
    stats = np.array([statistic(arr[row]) for row in indices])
    tail = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        estimate=float(statistic(arr)),
        low=float(np.quantile(stats, tail)),
        high=float(np.quantile(stats, 1.0 - tail)),
        confidence=confidence,
    )
