"""Shared utilities: deterministic RNG handling, statistics, serialization.

These helpers are deliberately dependency-light (numpy only) and are used by
every other subpackage.
"""

from repro.util.bootstrap import ConfidenceInterval, bootstrap_ci
from repro.util.rng import child_rng, rng_from_seed, spawn_seeds
from repro.util.significance import PairedComparison, paired_comparison
from repro.util.stats import (
    RunningStats,
    empirical_cdf,
    mean_std_window,
    normalize_scores,
    summarize,
)

__all__ = [
    "ConfidenceInterval",
    "PairedComparison",
    "RunningStats",
    "bootstrap_ci",
    "child_rng",
    "empirical_cdf",
    "mean_std_window",
    "normalize_scores",
    "paired_comparison",
    "rng_from_seed",
    "spawn_seeds",
    "summarize",
]
