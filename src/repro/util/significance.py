"""Paired significance tests for scheme comparisons.

The paper compares schemes by point statistics over 30 paired
(train, test) combinations.  With a simulated substrate we can also ask
whether the differences are statistically meaningful: the schemes are
evaluated on *the same* 30 pairs, so paired tests apply.  Wraps scipy's
Wilcoxon signed-rank test (no normality assumption, right for heavy-tailed
QoE differences) and the simple sign test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["PairedComparison", "paired_comparison"]


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of comparing scheme A against scheme B on paired samples."""

    mean_difference: float
    median_difference: float
    wins: int
    losses: int
    ties: int
    wilcoxon_p: float
    sign_test_p: float

    @property
    def n(self) -> int:
        return self.wins + self.losses + self.ties

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the Wilcoxon test rejects "no difference" at *alpha*."""
        return self.wilcoxon_p < alpha


def paired_comparison(
    scores_a: np.ndarray | list[float],
    scores_b: np.ndarray | list[float],
) -> PairedComparison:
    """Compare two schemes' scores on the same evaluation pairs.

    Positive differences mean A beat B.  Raises :class:`ValueError` on
    mismatched lengths or fewer than five pairs (the tests are
    meaningless below that).
    """
    a = np.asarray(scores_a, dtype=float).ravel()
    b = np.asarray(scores_b, dtype=float).ravel()
    if a.shape != b.shape:
        raise ValueError(f"paired samples differ in shape: {a.shape} vs {b.shape}")
    if a.size < 5:
        raise ValueError(f"need >= 5 pairs for a paired test, got {a.size}")
    differences = a - b
    wins = int(np.sum(differences > 0))
    losses = int(np.sum(differences < 0))
    ties = int(np.sum(differences == 0))
    if np.allclose(differences, 0.0):
        wilcoxon_p = 1.0
    else:
        wilcoxon_p = float(
            stats.wilcoxon(differences, zero_method="wilcox").pvalue
        )
    decided = wins + losses
    if decided == 0:
        sign_p = 1.0
    else:
        sign_p = float(
            stats.binomtest(wins, decided, p=0.5, alternative="two-sided").pvalue
        )
    return PairedComparison(
        mean_difference=float(differences.mean()),
        median_difference=float(np.median(differences)),
        wins=wins,
        losses=losses,
        ties=ties,
        wilcoxon_p=wilcoxon_p,
        sign_test_p=sign_p,
    )
