"""Deterministic random-number-generator plumbing.

Every stochastic component in the library receives an explicit
:class:`numpy.random.Generator` (or an integer seed from which one is built).
Nothing in the library touches the global numpy RNG, which keeps experiments
reproducible and lets tests pin every source of randomness.

The helpers here implement a simple *seed tree*: a root seed is split into
independent child seeds with :func:`spawn_seeds`, so, e.g., each agent in an
ensemble trains with its own stream while the whole ensemble remains a pure
function of one root seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rng_from_seed", "spawn_seeds", "child_rng"]


def rng_from_seed(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Accepts an ``int`` seed, an existing generator (returned unchanged), or
    ``None`` (fresh OS entropy).  Library code should call this once at its
    public boundary and pass generators internally.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(root_seed: int, count: int) -> list[int]:
    """Derive *count* independent integer seeds from *root_seed*.

    Uses :class:`numpy.random.SeedSequence` spawning, which guarantees the
    child streams are statistically independent of each other and of the
    root stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    children = np.random.SeedSequence(root_seed).spawn(count)
    return [int(child.generate_state(1)[0]) for child in children]


def child_rng(rng: np.random.Generator, index: int = 0) -> np.random.Generator:
    """Split an independent child generator off *rng*.

    Unlike calling ``rng.integers`` to make an ad-hoc seed, spawning keeps
    the child stream independent of later draws from the parent.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    seq = rng.bit_generator.seed_seq.spawn(index + 1)[index]
    return np.random.default_rng(seq)
