"""k-nearest-neighbour distance novelty detector.

The classic non-parametric baseline: a point is an outlier when its mean
distance to its k nearest training points exceeds the ``quantile``-th
percentile of the training points' own (leave-one-out) kNN distances.
No training beyond storing the data; included in the detector-ablation
benchmark as the simplest method that respects multi-modal support.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NoveltyError
from repro.novelty.base import NoveltyDetector

__all__ = ["KNNDetector"]


class KNNDetector(NoveltyDetector):
    """Mean-of-k-nearest-distances with an empirical-quantile threshold."""

    def __init__(self, k: int = 5, quantile: float = 0.95) -> None:
        super().__init__()
        if k < 1:
            raise NoveltyError(f"k must be >= 1, got {k}")
        if not 0.0 < quantile < 1.0:
            raise NoveltyError(f"quantile must be in (0, 1), got {quantile}")
        self.k = k
        self.quantile = quantile

    def _fit(self, samples: np.ndarray) -> None:
        if samples.shape[0] <= self.k:
            raise NoveltyError(
                f"need more than k={self.k} training samples, got {samples.shape[0]}"
            )
        self._train = samples.copy()
        # Leave-one-out kNN distance of each training point.
        distances = self._pairwise(samples, samples)
        np.fill_diagonal(distances, np.inf)
        knn = np.sort(distances, axis=1)[:, : self.k].mean(axis=1)
        self._threshold = float(np.quantile(knn, self.quantile))

    def _scores(self, samples: np.ndarray) -> np.ndarray:
        distances = self._pairwise(samples, self._train)
        knn = np.sort(distances, axis=1)[:, : self.k].mean(axis=1)
        # Larger distance = more anomalous; flip so >= 0 means inside.
        return self._threshold - knn

    @staticmethod
    def _pairwise(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = (
            (a**2).sum(axis=1)[:, None]
            + (b**2).sum(axis=1)[None, :]
            - 2.0 * a @ b.T
        )
        return np.sqrt(np.maximum(sq, 0.0))
