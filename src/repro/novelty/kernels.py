"""Kernel functions for the one-class SVM."""

from __future__ import annotations

import numpy as np

from repro.errors import NoveltyError

__all__ = ["rbf_kernel", "linear_kernel", "median_heuristic_gamma"]


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """Gaussian RBF kernel matrix ``K[i, j] = exp(-gamma * |a_i - b_j|^2)``."""
    if gamma <= 0:
        raise NoveltyError(f"gamma must be positive, got {gamma}")
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    if a.shape[1] != b.shape[1]:
        raise NoveltyError(
            f"dimension mismatch: {a.shape[1]} vs {b.shape[1]}"
        )
    sq_dists = (
        (a**2).sum(axis=1)[:, None]
        + (b**2).sum(axis=1)[None, :]
        - 2.0 * a @ b.T
    )
    return np.exp(-gamma * np.maximum(sq_dists, 0.0))


def linear_kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Plain inner-product kernel."""
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    if a.shape[1] != b.shape[1]:
        raise NoveltyError(
            f"dimension mismatch: {a.shape[1]} vs {b.shape[1]}"
        )
    return a @ b.T


def median_heuristic_gamma(samples: np.ndarray) -> float:
    """The 'scale' heuristic: ``gamma = 1 / (d * var(X))``.

    Matches the common library default; falls back to ``1/d`` for constant
    data where the variance vanishes.
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    dimensions = samples.shape[1]
    variance = float(samples.var())
    if variance <= 1e-12:
        return 1.0 / dimensions
    return 1.0 / (dimensions * variance)
