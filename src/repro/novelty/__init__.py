"""Novelty detection (out-of-distribution detection).

The paper's ``U_S`` signal treats OSAP's state-uncertainty question as
classic novelty detection and uses a one-class SVM [44].  scikit-learn is
not available offline, so :mod:`repro.novelty.ocsvm` implements the
Schölkopf ν-OC-SVM from scratch (RBF kernel, SMO solver on the dual).

:mod:`repro.novelty.kde` and :mod:`repro.novelty.mahalanobis` provide two
simpler detectors behind the same interface, used by the detector-ablation
benchmark (would the paper's conclusions change with a different ND
method?).
"""

from repro.novelty.base import NoveltyDetector
from repro.novelty.kde import KDEDetector
from repro.novelty.kernels import linear_kernel, rbf_kernel
from repro.novelty.knn import KNNDetector
from repro.novelty.mahalanobis import MahalanobisDetector
from repro.novelty.ocsvm import OneClassSVM

__all__ = [
    "KDEDetector",
    "KNNDetector",
    "MahalanobisDetector",
    "NoveltyDetector",
    "OneClassSVM",
    "linear_kernel",
    "rbf_kernel",
]
