"""The ν-one-class SVM of Schölkopf et al. [44], solved with SMO.

The dual problem is::

    minimize    (1/2) * alpha^T K alpha
    subject to  0 <= alpha_i <= 1 / (nu * n),   sum_i alpha_i = 1

with decision function ``f(x) = sum_i alpha_i k(x_i, x) - rho``; ``f >= 0``
inside the learned region (+1), negative outside (-1).  ``nu`` upper-bounds
the fraction of training outliers and lower-bounds the fraction of support
vectors.

The solver is sequential minimal optimization with first-order working-set
selection (the LIBSVM heuristic): at each step pick the most violating
pair under the equality constraint, solve the two-variable subproblem in
closed form, and update the gradient incrementally.  ``rho`` is recovered
as the mean of ``(K alpha)_i`` over unbounded support vectors.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NoveltyError
from repro.novelty.base import NoveltyDetector
from repro.novelty.kernels import median_heuristic_gamma, rbf_kernel
from repro.perf import fast_paths_enabled

__all__ = ["OneClassSVM"]

_ALPHA_TOL = 1e-8


class OneClassSVM(NoveltyDetector):
    """RBF-kernel ν-OC-SVM trained by SMO."""

    def __init__(
        self,
        nu: float = 0.1,
        gamma: float | None = None,
        tolerance: float = 1e-5,
        max_iterations: int = 100_000,
        prune: bool = True,
    ) -> None:
        super().__init__()
        if not 0.0 < nu <= 1.0:
            raise NoveltyError(f"nu must be in (0, 1], got {nu}")
        if gamma is not None and gamma <= 0:
            raise NoveltyError(f"gamma must be positive, got {gamma}")
        if tolerance <= 0:
            raise NoveltyError(f"tolerance must be positive, got {tolerance}")
        if max_iterations < 1:
            raise NoveltyError(f"max_iterations must be >= 1, got {max_iterations}")
        self.nu = nu
        self.gamma = gamma
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.prune = prune
        self.support_vectors_: np.ndarray | None = None
        self.dual_coef_: np.ndarray | None = None
        self.rho_: float = 0.0
        self.iterations_: int = 0

    def _fit(self, samples: np.ndarray) -> None:
        n = samples.shape[0]
        gamma = self.gamma if self.gamma is not None else median_heuristic_gamma(samples)
        self._gamma_value = gamma
        upper = 1.0 / (self.nu * n)
        kernel = rbf_kernel(samples, samples, gamma)
        alpha = self._initial_alpha(n, upper)
        gradient = kernel @ alpha
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            # First-order working-set selection under sum(alpha) = 1:
            # i can receive weight (alpha_i < C), j can give it (alpha_j > 0).
            can_up = alpha < upper - _ALPHA_TOL
            can_down = alpha > _ALPHA_TOL
            if not can_up.any() or not can_down.any():
                break
            i = int(np.flatnonzero(can_up)[np.argmin(gradient[can_up])])
            j = int(np.flatnonzero(can_down)[np.argmax(gradient[can_down])])
            if gradient[j] - gradient[i] < self.tolerance:
                break
            eta = kernel[i, i] - 2.0 * kernel[i, j] + kernel[j, j]
            if eta <= 1e-12:
                eta = 1e-12
            delta = (gradient[j] - gradient[i]) / eta
            delta = min(delta, upper - alpha[i], alpha[j])
            if delta <= 0:
                break
            alpha[i] += delta
            alpha[j] -= delta
            gradient += delta * (kernel[:, i] - kernel[:, j])
        self.iterations_ = iterations
        support = alpha > _ALPHA_TOL
        # Zero-alpha rows contribute exactly 0 to every score; dropping them
        # shrinks the kernel evaluation from O(n) to O(#SV) per query with
        # bitwise-identical scores.  ``prune=False`` keeps all training rows
        # (the regression tests compare the two).
        keep = support if self.prune else np.ones(n, dtype=bool)
        self.support_vectors_ = samples[keep].copy()
        self.dual_coef_ = alpha[keep].copy()
        # Cached for the fast scoring path: |sv|^2 never changes after fit.
        self._sv_sq_norms = (self.support_vectors_**2).sum(axis=1)
        self._bound_fraction = float(
            np.mean(alpha[support] >= upper - _ALPHA_TOL)
        )
        self.rho_ = self._compute_rho(alpha, gradient, upper)

    def _scores(self, samples: np.ndarray) -> np.ndarray:
        if fast_paths_enabled():
            # Inline rbf_kernel with the support-vector norms precomputed at
            # fit time; term-for-term the same arithmetic, so scores are
            # bitwise identical to the reference path below.
            samples = np.atleast_2d(np.asarray(samples, dtype=float))
            sq_dists = (
                (samples**2).sum(axis=1)[:, None]
                + self._sv_sq_norms[None, :]
                - 2.0 * samples @ self.support_vectors_.T
            )
            kernel = np.exp(-self._gamma_value * np.maximum(sq_dists, 0.0))
        else:
            kernel = rbf_kernel(samples, self.support_vectors_, self._gamma_value)
        return kernel @ self.dual_coef_ - self.rho_

    @staticmethod
    def _initial_alpha(n: int, upper: float) -> np.ndarray:
        """LIBSVM's feasible start: saturate the first floor(nu*n) entries."""
        alpha = np.zeros(n)
        remaining = 1.0
        for index in range(n):
            alpha[index] = min(upper, remaining)
            remaining -= alpha[index]
            if remaining <= 0:
                break
        if remaining > 1e-12:
            raise NoveltyError(
                "infeasible dual: nu * n < 1 "
                f"(nu={1.0 / (upper * n):.4f}, n={n}); use a larger nu or more data"
            )
        return alpha

    def _compute_rho(
        self, alpha: np.ndarray, gradient: np.ndarray, upper: float
    ) -> float:
        unbounded = (alpha > _ALPHA_TOL) & (alpha < upper - _ALPHA_TOL)
        if unbounded.any():
            return float(gradient[unbounded].mean())
        # All support vectors at the bound: rho lies between the active sets.
        lower_set = gradient[alpha > _ALPHA_TOL]
        upper_set = gradient[alpha < upper - _ALPHA_TOL]
        candidates = []
        if lower_set.size:
            candidates.append(lower_set.max())
        if upper_set.size:
            candidates.append(upper_set.min())
        if not candidates:
            raise NoveltyError("degenerate OC-SVM solution: no support vectors")
        return float(np.mean(candidates))

    @property
    def training_outlier_fraction(self) -> float:
        """Fraction of training points at the upper bound (proxy for the
        fraction treated as outliers; should be <= nu up to degeneracies)."""
        if self.dual_coef_ is None:
            raise NoveltyError("OneClassSVM used before fit()")
        return self._bound_fraction

    def _validate(self, samples: np.ndarray, fitting: bool) -> np.ndarray:
        samples = super()._validate(samples, fitting)
        if fitting:
            if samples.shape[0] * self.nu < 1.0:
                raise NoveltyError(
                    f"need nu * n >= 1 for a feasible dual "
                    f"(nu={self.nu}, n={samples.shape[0]})"
                )
            self._n_train = samples.shape[0]
        return samples
