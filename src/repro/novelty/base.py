"""The common novelty-detector interface.

A detector learns the support of the training distribution from unlabeled
samples.  ``predict`` follows the OC-SVM convention the paper describes:
"+1 in a small region capturing most of the data points, and -1 elsewhere".
"""

from __future__ import annotations

import numpy as np

from repro.errors import NoveltyError

__all__ = ["NoveltyDetector"]


class NoveltyDetector:
    """Base class: fit on in-distribution samples, score/flag new ones."""

    def __init__(self) -> None:
        self._fitted = False

    def fit(self, samples: np.ndarray) -> "NoveltyDetector":
        """Learn the training distribution's support from ``(n, d)`` samples."""
        samples = self._validate(samples, fitting=True)
        self._fit(samples)
        self._fitted = True
        return self

    def scores(self, samples: np.ndarray) -> np.ndarray:
        """Decision scores, one per row; >= 0 means in-distribution."""
        if not self._fitted:
            raise NoveltyError(f"{type(self).__name__} used before fit()")
        return self._scores(self._validate(samples, fitting=False))

    def predict(self, samples: np.ndarray) -> np.ndarray:
        """+1 for in-distribution rows, -1 for outliers."""
        return np.where(self.scores(samples) >= 0.0, 1, -1)

    def is_outlier(self, sample: np.ndarray) -> bool:
        """Convenience single-sample check."""
        return bool(self.predict(np.atleast_2d(sample))[0] == -1)

    def _fit(self, samples: np.ndarray) -> None:
        raise NotImplementedError

    def _scores(self, samples: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _validate(self, samples: np.ndarray, fitting: bool) -> np.ndarray:
        samples = np.asarray(samples, dtype=float)
        if samples.ndim == 1:
            samples = samples[None, :]
        if samples.ndim != 2:
            raise NoveltyError(f"samples must be 2-D (n, d), got {samples.shape}")
        if samples.shape[0] == 0:
            raise NoveltyError("no samples provided")
        if not np.all(np.isfinite(samples)):
            raise NoveltyError("samples contain non-finite values")
        if fitting:
            self._dim = samples.shape[1]
        elif samples.shape[1] != self._dim:
            raise NoveltyError(
                f"expected {self._dim}-dimensional samples, got {samples.shape[1]}"
            )
        return samples
