"""Mahalanobis-distance novelty detector.

Fits a Gaussian (mean + regularized covariance) to the training samples
and flags points whose squared Mahalanobis distance exceeds the
``quantile``-th percentile of the training distances.  The cheapest
reasonable detector; included for the ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NoveltyError
from repro.novelty.base import NoveltyDetector

__all__ = ["MahalanobisDetector"]


class MahalanobisDetector(NoveltyDetector):
    """Gaussian envelope with an empirical-quantile threshold."""

    def __init__(self, quantile: float = 0.95, regularization: float = 1e-6) -> None:
        super().__init__()
        if not 0.0 < quantile < 1.0:
            raise NoveltyError(f"quantile must be in (0, 1), got {quantile}")
        if regularization <= 0:
            raise NoveltyError(
                f"regularization must be positive, got {regularization}"
            )
        self.quantile = quantile
        self.regularization = regularization

    def _fit(self, samples: np.ndarray) -> None:
        self._mean = samples.mean(axis=0)
        centered = samples - self._mean
        covariance = centered.T @ centered / max(samples.shape[0] - 1, 1)
        covariance += self.regularization * np.eye(samples.shape[1])
        self._precision = np.linalg.inv(covariance)
        train_distances = self._squared_distance(samples)
        self._threshold = float(np.quantile(train_distances, self.quantile))

    def _scores(self, samples: np.ndarray) -> np.ndarray:
        # Larger distance = more anomalous, so flip the sign: >= 0 is inside.
        return self._threshold - self._squared_distance(samples)

    def _squared_distance(self, samples: np.ndarray) -> np.ndarray:
        centered = samples - self._mean
        return np.einsum("nd,de,ne->n", centered, self._precision, centered)
