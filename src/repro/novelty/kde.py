"""Kernel-density-estimate novelty detector.

A Gaussian KDE over the training samples; a test point is an outlier when
its estimated log-density falls below the ``quantile``-th percentile of the
training points' own log-densities.  Used as a drop-in alternative to the
OC-SVM in the detector-ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NoveltyError
from repro.novelty.base import NoveltyDetector

__all__ = ["KDEDetector"]


class KDEDetector(NoveltyDetector):
    """Gaussian KDE with Scott's-rule bandwidth and a quantile threshold."""

    def __init__(self, quantile: float = 0.05, bandwidth: float | None = None) -> None:
        super().__init__()
        if not 0.0 < quantile < 1.0:
            raise NoveltyError(f"quantile must be in (0, 1), got {quantile}")
        if bandwidth is not None and bandwidth <= 0:
            raise NoveltyError(f"bandwidth must be positive, got {bandwidth}")
        self.quantile = quantile
        self.bandwidth = bandwidth

    def _fit(self, samples: np.ndarray) -> None:
        n, d = samples.shape
        self._train = samples.copy()
        if self.bandwidth is not None:
            h = self.bandwidth
        else:
            # Scott's rule, with a positive floor for near-constant data.
            spread = float(samples.std())
            h = max(spread, 1e-3) * n ** (-1.0 / (d + 4))
        self._h = h
        self._log_norm = -d * np.log(h) - 0.5 * d * np.log(2.0 * np.pi)
        train_density = self._log_density(samples, exclude_self=True)
        self._threshold = float(np.quantile(train_density, self.quantile))

    def _scores(self, samples: np.ndarray) -> np.ndarray:
        return self._log_density(samples, exclude_self=False) - self._threshold

    def _log_density(self, samples: np.ndarray, exclude_self: bool) -> np.ndarray:
        """Leave-one-out log-density on training data avoids the self-match
        spike that would make every training point look typical."""
        diffs = samples[:, None, :] - self._train[None, :, :]
        sq = (diffs**2).sum(axis=2) / (self._h**2)
        log_kernels = -0.5 * sq + self._log_norm
        if exclude_self:
            np.fill_diagonal(log_kernels, -np.inf)
            count = max(self._train.shape[0] - 1, 1)
        else:
            count = self._train.shape[0]
        max_log = log_kernels.max(axis=1, keepdims=True)
        max_log = np.where(np.isfinite(max_log), max_log, 0.0)
        sums = np.exp(log_kernels - max_log).sum(axis=1)
        return (max_log[:, 0] + np.log(np.maximum(sums, 1e-300))) - np.log(count)
