"""Scheme runtimes: the artifacts a service worker holds per scheme.

A *scheme* bundles everything needed to answer a monitored decision:
the learned policy, the default policy, and a configured
:class:`~repro.core.monitor.SafetyMonitor` prototype (signal + trigger
+ revert mode).  :class:`SchemeRuntime` is the worker-side handle — it
mints fresh per-session monitors from the prototype
(:meth:`SchemeRuntime.new_monitor`, via
:meth:`~repro.core.monitor.SafetyMonitor.fork`) and computes policy
actions for the service's ``step`` handler.  Crucially a runtime holds
**no session state**: every worker loading the same artifacts can serve
(or resume) any session, which is what makes the service's compute tier
stateless.

:func:`build_demo_scheme` asks a registered :class:`~repro.domains.Domain`
for its self-contained demo scheme (seeded policies, calibrated trigger)
and wraps it into a :class:`SchemeRuntime`, so the CLI and CI can boot a
service for any domain without trained artifacts on disk.  This module
reaches workloads only through the :mod:`repro.domains` registry —
enforced by ``tools/check_layers.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.monitor import SafetyController, SafetyMonitor
from repro.domains import LinearSoftmaxPolicy, get_domain
from repro.mdp.interfaces import Policy
from repro.serve.engine import ServeEngine

__all__ = [
    "DEMO_SCHEME",
    "LinearSoftmaxPolicy",
    "SchemeRuntime",
    "build_demo_scheme",
]

#: Name under which :func:`build_demo_scheme` registers itself.
DEMO_SCHEME = "demo"


@dataclass(frozen=True)
class SchemeRuntime:
    """One scheme's stateless artifacts held by a service worker."""

    #: Scheme name clients pass in ``attach``.
    name: str
    #: The learned (monitored) policy.
    learned: Policy
    #: The safe fallback policy.
    default: Policy
    #: Configured monitor prototype; sessions get forks of it.
    prototype: SafetyMonitor

    def new_monitor(self) -> SafetyMonitor:
        """A fresh session monitor forked from the prototype."""
        return self.prototype.fork()

    def policy_for(self, defaulted: bool) -> Policy:
        """The policy that decides given the monitor's current mode."""
        return self.default if defaulted else self.learned

    @classmethod
    def from_controller(
        cls, name: str, controller: SafetyController
    ) -> "SchemeRuntime":
        """A runtime serving sessions under *controller*'s scheme."""
        return cls(
            name=name,
            learned=controller.learned,
            default=controller.default,
            prototype=controller.monitor,
        )

    @classmethod
    def from_engine(cls, name: str, engine: ServeEngine) -> "SchemeRuntime":
        """A runtime sharing a :class:`ServeEngine`'s scheme artifacts."""
        return cls(
            name=name,
            learned=engine.learned,
            default=engine.default,
            prototype=SafetyMonitor(
                engine.signal,
                engine.trigger,
                allow_revert=engine.allow_revert,
                name=engine.name,
            ),
        )


def build_demo_scheme(
    alpha: float | None = None,
    ensemble_size: int = 4,
    seed: int = 0,
    name: str = DEMO_SCHEME,
    domain: str = "abr",
) -> SchemeRuntime:
    """A self-contained demo scheme for demos, CI, and benchmarks.

    Dispatches to the registered *domain*'s
    :meth:`~repro.domains.Domain.demo_scheme` — seeded policies over the
    domain's action set, its safe fallback, and its calibrated trigger
    (``alpha=None`` picks the domain's default threshold) — and wraps
    the result into a :class:`SchemeRuntime`.  Everything is derived
    from *seed*, so any two workers build bitwise-identical runtimes.

    Raises :class:`~repro.errors.ConfigError` naming the registered
    domains when *domain* is unknown.
    """
    scheme = get_domain(domain).demo_scheme(
        alpha=alpha, ensemble_size=ensemble_size, seed=seed, name=name
    )
    return SchemeRuntime(
        name=name,
        learned=scheme.learned,
        default=scheme.default,
        prototype=scheme.monitor(),
    )
