"""Scheme runtimes: the artifacts a service worker holds per scheme.

A *scheme* bundles everything needed to answer a monitored decision:
the learned policy, the default policy, and a configured
:class:`~repro.core.monitor.SafetyMonitor` prototype (signal + trigger
+ revert mode).  :class:`SchemeRuntime` is the worker-side handle — it
mints fresh per-session monitors from the prototype
(:meth:`SchemeRuntime.new_monitor`, via
:meth:`~repro.core.monitor.SafetyMonitor.fork`) and computes policy
actions for the service's ``step`` handler.  Crucially a runtime holds
**no session state**: every worker loading the same artifacts can serve
(or resume) any session, which is what makes the service's compute tier
stateless.

:func:`build_demo_scheme` constructs a fully self-contained ``U_pi``
demo scheme (seeded linear-softmax ensemble over the standard Envivio
manifest, BBA default) so the CLI and CI can boot a service without any
trained artifacts on disk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ensemble_signals import PolicyEnsembleSignal
from repro.core.monitor import SafetyController, SafetyMonitor
from repro.core.thresholding import VarianceTrigger
from repro.errors import ServiceError
from repro.mdp.interfaces import Policy
from repro.policies.buffer_based import BufferBasedPolicy
from repro.serve.engine import ServeEngine
from repro.video.envivio import envivio_dash3_manifest

__all__ = [
    "DEMO_SCHEME",
    "LinearSoftmaxPolicy",
    "SchemeRuntime",
    "build_demo_scheme",
]

#: Name under which :func:`build_demo_scheme` registers itself.
DEMO_SCHEME = "demo"


class LinearSoftmaxPolicy:
    """A deterministic seeded linear-softmax policy over flat features.

    The demo scheme's stand-in for a trained agent: logits are a fixed
    random linear map of the flattened observation, the action is the
    argmax, so trajectories are reproducible from the seed alone and
    need no artifacts on disk.
    """

    def __init__(self, seed: int, num_actions: int, num_features: int) -> None:
        self._weights = np.random.default_rng(seed).normal(
            size=(num_actions, num_features)
        )

    def reset(self) -> None:
        """No per-session state to reset."""

    def action_probabilities(self, observation: np.ndarray) -> np.ndarray:
        """Softmax over the linear logits of the flattened observation."""
        logits = self._weights @ np.asarray(observation, dtype=float).reshape(-1)
        logits -= logits.max()
        exp = np.exp(logits)
        return exp / exp.sum()

    def act(self, observation: np.ndarray, rng: np.random.Generator) -> int:
        """The argmax action (deterministic; *rng* is unused)."""
        return int(np.argmax(self.action_probabilities(observation)))


@dataclass(frozen=True)
class SchemeRuntime:
    """One scheme's stateless artifacts held by a service worker."""

    #: Scheme name clients pass in ``attach``.
    name: str
    #: The learned (monitored) policy.
    learned: Policy
    #: The safe fallback policy.
    default: Policy
    #: Configured monitor prototype; sessions get forks of it.
    prototype: SafetyMonitor

    def new_monitor(self) -> SafetyMonitor:
        """A fresh session monitor forked from the prototype."""
        return self.prototype.fork()

    def policy_for(self, defaulted: bool) -> Policy:
        """The policy that decides given the monitor's current mode."""
        return self.default if defaulted else self.learned

    @classmethod
    def from_controller(
        cls, name: str, controller: SafetyController
    ) -> "SchemeRuntime":
        """A runtime serving sessions under *controller*'s scheme."""
        return cls(
            name=name,
            learned=controller.learned,
            default=controller.default,
            prototype=controller.monitor,
        )

    @classmethod
    def from_engine(cls, name: str, engine: ServeEngine) -> "SchemeRuntime":
        """A runtime sharing a :class:`ServeEngine`'s scheme artifacts."""
        return cls(
            name=name,
            learned=engine.learned,
            default=engine.default,
            prototype=SafetyMonitor(
                engine.signal,
                engine.trigger,
                allow_revert=engine.allow_revert,
                name=engine.name,
            ),
        )


def build_demo_scheme(
    alpha: float = 0.12,
    ensemble_size: int = 4,
    seed: int = 0,
    name: str = DEMO_SCHEME,
) -> SchemeRuntime:
    """A self-contained ``U_pi`` scheme for demos, CI, and benchmarks.

    Learned policy and ensemble members are seeded
    :class:`LinearSoftmaxPolicy` instances over the standard Envivio
    manifest's action set; the default is BBA; the trigger is the
    paper's k-window variance rule with threshold *alpha*.  Everything
    is derived from *seed*, so any two workers build bitwise-identical
    runtimes.
    """
    if ensemble_size < 2:
        raise ServiceError(
            f"ensemble_size must be >= 2, got {ensemble_size}"
        )
    manifest = envivio_dash3_manifest(repeats=1)
    num_actions = len(manifest.bitrates_kbps)
    num_features = int(np.prod((6, 8)))
    learned = LinearSoftmaxPolicy(seed + 1, num_actions, num_features)
    default = BufferBasedPolicy(manifest.bitrates_kbps)
    members = [
        LinearSoftmaxPolicy(seed + 10 + index, num_actions, num_features)
        for index in range(ensemble_size)
    ]
    signal = PolicyEnsembleSignal(members, trim=1)
    trigger = VarianceTrigger(alpha=alpha, k=3, l=1)
    prototype = SafetyMonitor(signal, trigger, name=name)
    return SchemeRuntime(
        name=name, learned=learned, default=default, prototype=prototype
    )
