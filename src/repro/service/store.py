"""The pluggable session store: hot live monitors, cold JSON snapshots.

The service keeps every attached session's state in a
:class:`SessionStore` keyed by ``(tenant_id, session_id)``.  The store
is two-tier:

* the **hot tier** holds live :class:`~repro.core.monitor.SafetyMonitor`
  objects plus each session's policy RNG — zero serialization on the
  step hot path;
* the **cold tier** is a pluggable :class:`StoreBackend` holding JSON
  snapshots built from the monitor's versioned
  :meth:`~repro.core.monitor.SafetyMonitor.state_dict` and the RNG's
  bit-generator state.

TTL eviction (:meth:`SessionStore.evict_idle`) snapshots idle hot
sessions to the cold tier; the next ``step`` for an evicted key resumes
it transparently — a fresh monitor is minted from the scheme's
prototype, the snapshot is loaded, and the remaining decisions are
bitwise-identical to an uninterrupted session.  Because the snapshot is
self-contained JSON, *any* worker holding the same scheme artifacts can
resume *any* session from a shared backend: compute stays stateless,
storage stays stateful.

Backends: :class:`DictBackend` (in-process mapping — one worker, tests,
benchmarks) and :class:`SQLiteBackend` (a shared file — sessions survive
process restarts and hop between workers).  Both sit behind the same
:class:`StoreBackend` interface; :func:`make_backend` builds one from a
CLI-friendly name.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro import obs
from repro.core.monitor import SafetyMonitor
from repro.errors import ServiceError
from repro.util.rng import rng_from_seed

__all__ = [
    "SNAPSHOT_VERSION",
    "DictBackend",
    "DuplicateSessionError",
    "HotSession",
    "SQLiteBackend",
    "SessionStore",
    "StoreBackend",
    "UnknownSessionError",
    "make_backend",
]

#: Schema version of the cold-tier session snapshot (bump on changes).
SNAPSHOT_VERSION = 1


class UnknownSessionError(ServiceError):
    """The ``(tenant, session)`` key is neither hot nor in cold storage."""

    code = "unknown-session"


class DuplicateSessionError(ServiceError):
    """An ``attach`` named a ``(tenant, session)`` key that already exists."""

    code = "session-exists"


class StoreBackend:
    """Cold storage for session snapshots, keyed by ``(tenant, session)``.

    Implementations store opaque JSON payload strings; the
    :class:`SessionStore` owns the snapshot schema.  All methods are
    synchronous — the service calls them off the hot path only
    (eviction, resume, detach).
    """

    #: CLI-friendly backend name (``"memory"`` / ``"sqlite"``).
    kind = "abstract"

    def put(self, tenant: str, session: str, payload: str) -> None:
        """Insert or replace the snapshot for ``(tenant, session)``."""
        raise NotImplementedError

    def get(self, tenant: str, session: str) -> str | None:
        """The stored snapshot payload, or ``None`` when absent."""
        raise NotImplementedError

    def delete(self, tenant: str, session: str) -> bool:
        """Remove the snapshot; returns whether one existed."""
        raise NotImplementedError

    def keys(self) -> list[tuple[str, str]]:
        """Every stored ``(tenant, session)`` key, sorted."""
        raise NotImplementedError

    def __len__(self) -> int:
        """Number of stored snapshots."""
        return len(self.keys())

    def close(self) -> None:
        """Release any underlying resources (idempotent)."""


class DictBackend(StoreBackend):
    """An in-process mapping backend: one worker, tests, benchmarks.

    Snapshots live in a plain dict owned by this object, so two
    :class:`SessionStore` handles sharing one ``DictBackend`` instance
    model two workers over shared storage without touching disk.
    """

    kind = "memory"

    def __init__(self) -> None:
        self._payloads: dict[tuple[str, str], str] = {}

    def put(self, tenant: str, session: str, payload: str) -> None:
        """Insert or replace the snapshot for ``(tenant, session)``."""
        self._payloads[(tenant, session)] = payload

    def get(self, tenant: str, session: str) -> str | None:
        """The stored snapshot payload, or ``None`` when absent."""
        return self._payloads.get((tenant, session))

    def delete(self, tenant: str, session: str) -> bool:
        """Remove the snapshot; returns whether one existed."""
        return self._payloads.pop((tenant, session), None) is not None

    def keys(self) -> list[tuple[str, str]]:
        """Every stored ``(tenant, session)`` key, sorted."""
        return sorted(self._payloads)


class SQLiteBackend(StoreBackend):
    """A SQLite file backend: snapshots shared across workers/restarts.

    One table keyed by ``(tenant, session)`` with an ``updated_at``
    wall-clock column for operators.  The connection is guarded by a
    lock and created with ``check_same_thread=False`` so a background
    service thread and a foreground CLI can share one handle.
    """

    kind = "sqlite"

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        with self._lock:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS sessions ("
                " tenant TEXT NOT NULL,"
                " session TEXT NOT NULL,"
                " payload TEXT NOT NULL,"
                " updated_at REAL NOT NULL,"
                " PRIMARY KEY (tenant, session))"
            )
            self._conn.commit()

    def put(self, tenant: str, session: str, payload: str) -> None:
        """Insert or replace the snapshot for ``(tenant, session)``."""
        with self._lock:
            self._conn.execute(
                "INSERT INTO sessions (tenant, session, payload, updated_at)"
                " VALUES (?, ?, ?, ?)"
                " ON CONFLICT (tenant, session)"
                " DO UPDATE SET payload = excluded.payload,"
                " updated_at = excluded.updated_at",
                (tenant, session, payload, time.time()),
            )
            self._conn.commit()

    def get(self, tenant: str, session: str) -> str | None:
        """The stored snapshot payload, or ``None`` when absent."""
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM sessions WHERE tenant = ? AND session = ?",
                (tenant, session),
            ).fetchone()
        return None if row is None else row[0]

    def delete(self, tenant: str, session: str) -> bool:
        """Remove the snapshot; returns whether one existed."""
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM sessions WHERE tenant = ? AND session = ?",
                (tenant, session),
            )
            self._conn.commit()
        return cursor.rowcount > 0

    def keys(self) -> list[tuple[str, str]]:
        """Every stored ``(tenant, session)`` key, sorted."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT tenant, session FROM sessions ORDER BY tenant, session"
            ).fetchall()
        return [(tenant, session) for tenant, session in rows]

    def __len__(self) -> int:
        """Number of stored snapshots."""
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM sessions"
            ).fetchone()
        return int(count)

    def close(self) -> None:
        """Close the SQLite connection (idempotent)."""
        with self._lock:
            self._conn.close()


def make_backend(kind: str, path: str | Path | None = None) -> StoreBackend:
    """Build a cold-store backend from a CLI-friendly name.

    ``"memory"`` needs no path; ``"sqlite"`` requires the database file
    path.  Unknown kinds raise :class:`~repro.errors.ServiceError`.
    """
    if kind == "memory":
        return DictBackend()
    if kind == "sqlite":
        if path is None:
            raise ServiceError("the sqlite backend requires a store path")
        return SQLiteBackend(path)
    raise ServiceError(
        f"unknown store backend {kind!r}; expected 'memory' or 'sqlite'"
    )


@dataclass
class HotSession:
    """One live session in the hot tier: monitor, RNG, bookkeeping."""

    tenant: str
    session: str
    scheme: str
    seed: int
    monitor: SafetyMonitor
    rng: np.random.Generator
    last_used: float
    #: How many times this session has been resumed from cold storage.
    resumes: int = 0

    def snapshot(self) -> dict:
        """This session's full state as a JSON-able cold-tier snapshot."""
        return {
            "version": SNAPSHOT_VERSION,
            "tenant": self.tenant,
            "session": self.session,
            "scheme": self.scheme,
            "seed": int(self.seed),
            "resumes": int(self.resumes),
            "monitor": self.monitor.state_dict(),
            "rng": self.rng.bit_generator.state,
        }

    def stats(self) -> dict:
        """Final counters reported by ``detach``."""
        monitor = self.monitor
        return {
            "steps": int(monitor.total_steps),
            "default_steps": int(monitor.default_steps),
            "default_fraction": float(monitor.default_fraction),
            "resumes": int(self.resumes),
        }


def _restore_rng(state: dict) -> np.random.Generator:
    """Rebuild a generator from a snapshot's bit-generator state."""
    rng = rng_from_seed(0)
    expected = type(rng.bit_generator).__name__
    if state.get("bit_generator") != expected:
        raise ServiceError(
            f"snapshot RNG is {state.get('bit_generator')!r}, "
            f"this runtime uses {expected!r}"
        )
    rng.bit_generator.state = state
    return rng


class SessionStore:
    """Two-tier monitor state keyed by ``(tenant, session)``.

    *backend* is the cold tier; *monitor_factory* maps a scheme name to
    a fresh, config-matching :class:`~repro.core.monitor.SafetyMonitor`
    (the service passes its scheme registry's
    :meth:`~repro.service.schemes.SchemeRuntime.new_monitor`).
    *hot_ttl_s* is the idle bound for :meth:`evict_idle`; *clock* is
    injectable so tests drive eviction deterministically.

    All methods are lock-guarded: the asyncio service is single-threaded
    but tests and the benchmark drive stores from helper threads.
    """

    def __init__(
        self,
        backend: StoreBackend,
        monitor_factory: Callable[[str], SafetyMonitor],
        hot_ttl_s: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if hot_ttl_s <= 0:
            raise ServiceError(f"hot_ttl_s must be > 0, got {hot_ttl_s}")
        self.backend = backend
        self.hot_ttl_s = float(hot_ttl_s)
        self._factory = monitor_factory
        self._clock = clock
        self._hot: dict[tuple[str, str], HotSession] = {}
        self._lock = threading.RLock()
        #: Total sessions snapshotted to cold storage by eviction.
        self.evictions = 0
        #: Total sessions resumed from cold storage.
        self.resumes = 0

    @property
    def hot_count(self) -> int:
        """Live sessions currently occupying hot slots."""
        with self._lock:
            return len(self._hot)

    @property
    def cold_count(self) -> int:
        """Snapshots currently in the cold tier."""
        return len(self.backend)

    def contains(self, tenant: str, session: str) -> bool:
        """Whether the key exists in either tier."""
        key = (tenant, session)
        with self._lock:
            if key in self._hot:
                return True
        return self.backend.get(tenant, session) is not None

    def hot_keys(self) -> list[tuple[str, str]]:
        """Every hot ``(tenant, session)`` key, sorted."""
        with self._lock:
            return sorted(self._hot)

    def attach(
        self, tenant: str, session: str, scheme: str, seed: int
    ) -> HotSession:
        """Register a new session and return its live hot entry.

        Raises :class:`DuplicateSessionError` when the key already
        exists in either tier — re-attaching would silently discard
        monitor state.
        """
        key = (tenant, session)
        with self._lock:
            if key in self._hot or self.backend.get(tenant, session) is not None:
                raise DuplicateSessionError(
                    f"session {tenant}/{session} is already attached"
                )
            monitor = self._factory(scheme)
            monitor.reset()
            entry = HotSession(
                tenant=tenant,
                session=session,
                scheme=scheme,
                seed=int(seed),
                monitor=monitor,
                rng=rng_from_seed(int(seed)),
                last_used=self._clock(),
            )
            self._hot[key] = entry
            return entry

    def checkout(self, tenant: str, session: str) -> tuple[HotSession, bool]:
        """The live entry for a key, resuming from cold when evicted.

        Returns ``(entry, resumed)``; a resumed entry was rebuilt from
        its snapshot (fresh monitor from the scheme factory, restored
        state and RNG) and produces bitwise-identical decisions from
        here on.  Raises :class:`UnknownSessionError` for absent keys.
        """
        key = (tenant, session)
        with self._lock:
            entry = self._hot.get(key)
            if entry is not None:
                entry.last_used = self._clock()
                return entry, False
            payload = self.backend.get(tenant, session)
            if payload is None:
                raise UnknownSessionError(
                    f"session {tenant}/{session} is not attached"
                )
            entry = self._resume(payload)
            self._hot[key] = entry
            self.backend.delete(tenant, session)
            self.resumes += 1
            obs.inc("service.resumes", tenant=tenant)
            return entry, True

    def _resume(self, payload: str) -> HotSession:
        """Rebuild a hot entry from a cold-tier snapshot payload."""
        snapshot = json.loads(payload)
        version = snapshot.get("version")
        if version != SNAPSHOT_VERSION:
            raise ServiceError(
                f"session snapshot version {version!r} is not {SNAPSHOT_VERSION}"
            )
        monitor = self._factory(snapshot["scheme"])
        monitor.load_state_dict(snapshot["monitor"])
        return HotSession(
            tenant=snapshot["tenant"],
            session=snapshot["session"],
            scheme=snapshot["scheme"],
            seed=int(snapshot["seed"]),
            monitor=monitor,
            rng=_restore_rng(snapshot["rng"]),
            last_used=self._clock(),
            resumes=int(snapshot.get("resumes", 0)) + 1,
        )

    def evict_idle(
        self, max_idle_s: float | None = None, now: float | None = None
    ) -> int:
        """Snapshot hot sessions idle for ``>= max_idle_s`` to cold.

        *max_idle_s* defaults to the store's TTL; ``0`` evicts
        everything (the ``reopen``/shutdown path).  Returns how many
        sessions moved.
        """
        bound = self.hot_ttl_s if max_idle_s is None else float(max_idle_s)
        with self._lock:
            current = self._clock() if now is None else now
            idle = [
                key
                for key, entry in self._hot.items()
                if current - entry.last_used >= bound
            ]
            for tenant, session in idle:
                entry = self._hot.pop((tenant, session))
                self.backend.put(
                    tenant, session, json.dumps(entry.snapshot())
                )
                self.evictions += 1
                obs.inc("service.evictions", tenant=tenant)
        return len(idle)

    def evict_all(self) -> int:
        """Snapshot every hot session to cold (shutdown/reopen path)."""
        return self.evict_idle(max_idle_s=0.0)

    def detach(self, tenant: str, session: str) -> dict:
        """Remove a session from both tiers; returns its final counters.

        Works on hot and evicted sessions alike; raises
        :class:`UnknownSessionError` for absent keys.
        """
        key = (tenant, session)
        with self._lock:
            entry = self._hot.pop(key, None)
            if entry is not None:
                self.backend.delete(tenant, session)
                return entry.stats()
            payload = self.backend.get(tenant, session)
            if payload is None:
                raise UnknownSessionError(
                    f"session {tenant}/{session} is not attached"
                )
            self.backend.delete(tenant, session)
        snapshot = json.loads(payload)
        monitor_state = snapshot["monitor"]
        steps = int(monitor_state["total_steps"])
        default_steps = int(monitor_state["default_steps"])
        return {
            "steps": steps,
            "default_steps": default_steps,
            "default_fraction": default_steps / steps if steps else 0.0,
            "resumes": int(snapshot.get("resumes", 0)),
        }

    def close(self) -> None:
        """Close the cold backend (hot entries are discarded)."""
        self.backend.close()
