"""The multi-tenant safety service: asyncio line-JSON over a socket.

:class:`SafetyService` is the long-lived server.  It holds only
*stateless* artifacts per scheme (:class:`~repro.service.schemes
.SchemeRuntime`) plus one pluggable
:class:`~repro.service.store.SessionStore`; clients own their
environments and send raw observations, the service answers each with a
monitored action.  Because every byte of session state lives in the
store, any worker booted with the same schemes can resume any session —
including one TTL-evicted to cold storage — with bitwise-identical
decisions.

Overload handling is two-layered and *structured* (clients always get a
machine-readable code, never a dropped connection):

* **admission control** — ``attach`` beyond the ``max_sessions``
  hot-slot budget first tries a TTL eviction pass to free idle slots,
  then rejects with ``overloaded``;
* **load shedding** — when more than ``max_inflight`` stateful requests
  are already executing, new ones are refused with ``shed`` before any
  work happens (``stats``/``ping``/admin ops are never shed, so
  operators can always look inside a saturated service).

:class:`BackgroundService` runs a service event loop in a daemon thread
for tests, benchmarks, and notebooks.
"""

from __future__ import annotations

import asyncio
import contextlib
import math
import threading
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import obs
from repro.errors import ServiceError
from repro.service import protocol
from repro.service.protocol import (
    CODE_BAD_REQUEST,
    CODE_INTERNAL,
    CODE_OVERLOADED,
    CODE_SHED,
    CODE_UNKNOWN_OP,
    CODE_UNKNOWN_SCHEME,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.service.schemes import SchemeRuntime
from repro.service.store import SessionStore, make_backend

__all__ = [
    "SHEDDABLE_OPS",
    "BackgroundService",
    "SafetyService",
    "ServiceConfig",
    "UnknownSchemeError",
]

#: Stateful operations subject to load shedding; admin/health ops are
#: always admitted so a saturated service stays observable.
SHEDDABLE_OPS = frozenset({"attach", "step", "detach", "sleep"})

#: Upper bound accepted by the ``sleep`` diagnostic op.
_MAX_SLEEP_S = 10.0


class UnknownSchemeError(ServiceError):
    """``attach`` named a scheme the service was not booted with."""

    code = CODE_UNKNOWN_SCHEME


@dataclass
class ServiceConfig:
    """Boot-time configuration of a :class:`SafetyService`."""

    #: Interface to bind; loopback by default.
    host: str = "127.0.0.1"
    #: TCP port; ``0`` lets the OS pick (read ``bound_port`` after boot).
    port: int = 0
    #: Cold-store backend kind: ``"memory"`` or ``"sqlite"``.
    store: str = "memory"
    #: SQLite database path (required when ``store == "sqlite"``).
    store_path: str | None = None
    #: Idle bound before a hot session is snapshotted to cold storage.
    hot_ttl_s: float = 300.0
    #: Period of the background eviction task; ``0`` disables it.
    evict_interval_s: float = 0.0
    #: Hot-slot budget enforced by admission control on ``attach``.
    max_sessions: int = 64
    #: Concurrent stateful requests before load shedding kicks in.
    max_inflight: int = 64

    def __post_init__(self) -> None:
        """Reject configurations the service could not run under."""
        if self.store not in ("memory", "sqlite"):
            raise ServiceError(
                f"unknown store backend {self.store!r};"
                " expected 'memory' or 'sqlite'"
            )
        if self.store == "sqlite" and not self.store_path:
            raise ServiceError("the sqlite backend requires a store path")
        if self.hot_ttl_s <= 0:
            raise ServiceError(f"hot_ttl_s must be > 0, got {self.hot_ttl_s}")
        if self.evict_interval_s < 0:
            raise ServiceError(
                f"evict_interval_s must be >= 0, got {self.evict_interval_s}"
            )
        if self.max_sessions < 1:
            raise ServiceError(
                f"max_sessions must be >= 1, got {self.max_sessions}"
            )
        if self.max_inflight < 1:
            raise ServiceError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )


def _require_str(message: dict, fld: str) -> str:
    """The non-empty string under *fld*, or a :class:`ProtocolError`."""
    value = message.get(fld)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"field {fld!r} must be a non-empty string")
    return value


def _require_observation(message: dict) -> np.ndarray:
    """The request's observation as a float array, strictly validated."""
    value = message.get("observation")
    if not isinstance(value, list):
        raise ProtocolError("field 'observation' must be a JSON array")
    try:
        array = np.asarray(value, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"observation is not numeric: {exc}") from exc
    if array.size == 0:
        raise ProtocolError("observation must not be empty")
    return array


class SafetyService:
    """A long-lived multi-tenant OSAP server over line-delimited JSON.

    *schemes* are the runtimes this worker can serve; *config* fixes
    the bind address, the store backend, and the overload budgets.
    *clock* is injected into the session store so tests can drive TTL
    eviction deterministically.  Boot with :meth:`run` (an ``async``
    main) or wrap in :class:`BackgroundService` for a thread.
    """

    def __init__(
        self,
        schemes: list[SchemeRuntime],
        config: ServiceConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not schemes:
            raise ServiceError("a service needs at least one scheme")
        self.schemes = {runtime.name: runtime for runtime in schemes}
        if len(self.schemes) != len(schemes):
            raise ServiceError("scheme names must be unique")
        self.config = config if config is not None else ServiceConfig()
        self._clock = clock
        self.store = self._new_store(self._new_backend())
        #: Host the server actually bound (set once :meth:`run` is up).
        self.bound_host: str | None = None
        #: Port the server actually bound (set once :meth:`run` is up).
        self.bound_port: int | None = None
        #: Called with the service once it is accepting connections.
        self.on_ready: Callable[["SafetyService"], None] | None = None
        #: Requests refused by load shedding since boot.
        self.shed_count = 0
        #: Attaches refused by admission control since boot.
        self.overload_count = 0
        self._inflight = 0
        self._shutdown_event: asyncio.Event | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._handlers = {
            "ping": self._op_ping,
            "attach": self._op_attach,
            "step": self._op_step,
            "detach": self._op_detach,
            "stats": self._op_stats,
            "evict": self._op_evict,
            "reopen": self._op_reopen,
            "sleep": self._op_sleep,
            "shutdown": self._op_shutdown,
        }

    def _new_backend(self):
        """A cold-store backend per the service configuration."""
        return make_backend(self.config.store, self.config.store_path)

    def _new_store(self, backend) -> SessionStore:
        """A session store over *backend* with this service's TTL."""
        return SessionStore(
            backend,
            self._new_monitor,
            hot_ttl_s=self.config.hot_ttl_s,
            clock=self._clock,
        )

    def _new_monitor(self, scheme: str):
        """The store's monitor factory: fork the named scheme's prototype."""
        runtime = self.schemes.get(scheme)
        if runtime is None:
            raise UnknownSchemeError(
                f"unknown scheme {scheme!r};"
                f" this worker serves {sorted(self.schemes)}"
            )
        return runtime.new_monitor()

    # ------------------------------------------------------------------
    # Request handling

    async def dispatch(self, message: dict) -> dict:
        """Route one decoded request to its handler; never raises.

        Applies load shedding to :data:`SHEDDABLE_OPS` before any work,
        and maps every :class:`~repro.errors.ServiceError` to its stable
        wire code (unexpected exceptions become ``internal``).
        """
        op = message.get("op")
        if not isinstance(op, str):
            return protocol.fail(
                CODE_BAD_REQUEST, "request must carry a string 'op' field"
            )
        handler = self._handlers.get(op)
        if handler is None:
            return protocol.fail(CODE_UNKNOWN_OP, f"unknown operation {op!r}")
        if obs.enabled():
            obs.inc("service.requests", op=op)
        sheddable = op in SHEDDABLE_OPS
        if sheddable and self._inflight >= self.config.max_inflight:
            self.shed_count += 1
            if obs.enabled():
                obs.inc("service.shed", op=op)
            return protocol.fail(
                CODE_SHED,
                f"{self._inflight} requests already in flight"
                f" (max_inflight={self.config.max_inflight}); retry later",
                inflight=self._inflight,
            )
        if sheddable:
            self._inflight += 1
        try:
            return await handler(message)
        except ServiceError as exc:
            return protocol.fail(exc.code, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            return protocol.fail(
                CODE_INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        finally:
            if sheddable:
                self._inflight -= 1

    async def _op_ping(self, message: dict) -> dict:
        """Health check: protocol version and the served schemes."""
        return protocol.ok(
            "ping",
            protocol=PROTOCOL_VERSION,
            schemes=sorted(self.schemes),
        )

    async def _op_attach(self, message: dict) -> dict:
        """Register a session under a scheme, subject to admission."""
        tenant = _require_str(message, "tenant")
        session = _require_str(message, "session")
        scheme = _require_str(message, "scheme")
        seed = message.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ProtocolError(f"field 'seed' must be an integer, got {seed!r}")
        if scheme not in self.schemes:
            raise UnknownSchemeError(
                f"unknown scheme {scheme!r};"
                f" this worker serves {sorted(self.schemes)}"
            )
        if self.store.hot_count >= self.config.max_sessions:
            # Admission control: try to free slots held by idle sessions
            # before refusing; live sessions are never degraded.
            self.store.evict_idle()
            if self.store.hot_count >= self.config.max_sessions:
                self.overload_count += 1
                if obs.enabled():
                    obs.inc("service.overloaded", tenant=tenant)
                return protocol.fail(
                    CODE_OVERLOADED,
                    f"hot-slot budget exhausted"
                    f" ({self.store.hot_count}/{self.config.max_sessions});"
                    " detach a session or retry after the TTL",
                    live=self.store.hot_count,
                    max_sessions=self.config.max_sessions,
                )
        self.store.attach(tenant, session, scheme, seed)
        if obs.enabled():
            obs.inc("service.attaches", tenant=tenant)
        return protocol.ok(
            "attach", tenant=tenant, session=session, scheme=scheme, seed=seed
        )

    async def _op_step(self, message: dict) -> dict:
        """One monitored decision: fold the observation, pick, act."""
        tenant = _require_str(message, "tenant")
        session = _require_str(message, "session")
        observation = _require_observation(message)
        entry, resumed = self.store.checkout(tenant, session)
        runtime = self.schemes[entry.scheme]
        decision = entry.monitor.observe(observation)
        policy = runtime.policy_for(decision.defaulted)
        action = policy.act(observation, entry.rng)
        if obs.enabled():
            obs.inc("service.steps", tenant=tenant)
        signal_value = (
            None
            if math.isnan(decision.signal_value)
            else float(decision.signal_value)
        )
        return protocol.ok(
            "step",
            action=int(action),
            step=int(decision.step),
            defaulted=bool(decision.defaulted),
            fired=bool(decision.fired),
            handoff=bool(decision.handoff),
            signal_value=signal_value,
            resumed=bool(resumed),
        )

    async def _op_detach(self, message: dict) -> dict:
        """Finish a session (hot or cold) and report its counters."""
        tenant = _require_str(message, "tenant")
        session = _require_str(message, "session")
        stats = self.store.detach(tenant, session)
        if obs.enabled():
            obs.inc("service.detaches", tenant=tenant)
        return protocol.ok("detach", tenant=tenant, session=session, **stats)

    async def _op_stats(self, message: dict) -> dict:
        """Occupancy and counters; never shed, safe under saturation."""
        if obs.enabled():
            obs.set_gauge("service.hot_sessions", float(self.store.hot_count))
            obs.set_gauge("service.cold_sessions", float(self.store.cold_count))
        return protocol.ok(
            "stats",
            hot=self.store.hot_count,
            cold=self.store.cold_count,
            evictions=self.store.evictions,
            resumes=self.store.resumes,
            shed=self.shed_count,
            overloaded=self.overload_count,
            inflight=self._inflight,
            max_sessions=self.config.max_sessions,
            max_inflight=self.config.max_inflight,
            store=self.store.backend.kind,
            schemes=sorted(self.schemes),
        )

    async def _op_evict(self, message: dict) -> dict:
        """Run one eviction pass now (idle bound overridable)."""
        bound = message.get("max_idle_s")
        if bound is not None and not isinstance(bound, (int, float)):
            raise ProtocolError("field 'max_idle_s' must be a number")
        evicted = self.store.evict_idle(
            None if bound is None else float(bound)
        )
        return protocol.ok(
            "evict",
            evicted=evicted,
            hot=self.store.hot_count,
            cold=self.store.cold_count,
        )

    async def _op_reopen(self, message: dict) -> dict:
        """Snapshot everything and rebuild the store handle.

        Proves worker statelessness end-to-end: after ``reopen`` every
        session is served from a store object (and, for SQLite, a
        database connection) that did not exist when it was attached —
        exactly what a session hopping to another worker experiences.
        """
        evicted = self.store.evict_all()
        if self.store.backend.kind == "sqlite":
            self.store.close()
            backend = self._new_backend()
        else:
            # The dict backend *is* the shared storage; a fresh store
            # handle over the same object models the new worker.
            backend = self.store.backend
        self.store = self._new_store(backend)
        return protocol.ok(
            "reopen", evicted=evicted, cold=self.store.cold_count
        )

    async def _op_sleep(self, message: dict) -> dict:
        """Hold one in-flight slot for a while (diagnostics/tests)."""
        seconds = message.get("seconds", 0.05)
        if (
            not isinstance(seconds, (int, float))
            or isinstance(seconds, bool)
            or not 0 <= float(seconds) <= _MAX_SLEEP_S
        ):
            raise ProtocolError(
                f"field 'seconds' must be a number in [0, {_MAX_SLEEP_S}]"
            )
        await asyncio.sleep(float(seconds))
        return protocol.ok("sleep", seconds=float(seconds))

    async def _op_shutdown(self, message: dict) -> dict:
        """Acknowledge, then stop the server loop."""
        self.request_shutdown()
        return protocol.ok("shutdown")

    # ------------------------------------------------------------------
    # Server lifecycle

    def request_shutdown(self) -> None:
        """Ask the running server to stop (call on the loop thread)."""
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client: read a line, dispatch, write the response."""
        self._writers.add(writer)
        try:
            while not (
                self._shutdown_event is not None
                and self._shutdown_event.is_set()
            ):
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        protocol.encode_message(
                            protocol.fail(
                                CODE_BAD_REQUEST,
                                f"request line exceeds {MAX_LINE_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    response = await self.dispatch(protocol.decode_message(line))
                except ProtocolError as exc:
                    response = protocol.fail(exc.code, str(exc))
                writer.write(protocol.encode_message(response))
                await writer.drain()
        except ConnectionResetError:
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _evict_loop(self) -> None:
        """Background TTL sweeps every ``evict_interval_s`` seconds."""
        interval = self.config.evict_interval_s
        while True:
            await asyncio.sleep(interval)
            self.store.evict_idle()

    async def run(self) -> None:
        """Serve until :meth:`request_shutdown` (or the ``shutdown`` op).

        Binds the configured address (``port=0`` picks a free port,
        published as :attr:`bound_port`), starts the background eviction
        task when configured, fires :attr:`on_ready`, and on the way out
        snapshots every hot session to cold storage so a durable backend
        carries them across the restart.
        """
        self._shutdown_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=MAX_LINE_BYTES,
        )
        sockname = server.sockets[0].getsockname()
        self.bound_host, self.bound_port = sockname[0], int(sockname[1])
        evict_task = (
            asyncio.create_task(self._evict_loop())
            if self.config.evict_interval_s > 0
            else None
        )
        if self.on_ready is not None:
            self.on_ready(self)
        try:
            async with server:
                await self._shutdown_event.wait()
        finally:
            if evict_task is not None:
                evict_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await evict_task
            for writer in list(self._writers):
                writer.close()
            self.store.evict_all()
            self.store.close()


class BackgroundService:
    """Run a :class:`SafetyService` event loop in a daemon thread.

    The test-and-benchmark harness: ``start()`` blocks until the server
    is accepting connections (re-raising any boot failure), ``stop()``
    requests shutdown thread-safely and joins.  Usable as a context
    manager.
    """

    def __init__(self, service: SafetyService) -> None:
        self.service = service
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(
            target=self._run, name="safety-service", daemon=True
        )

    def _run(self) -> None:
        """Thread target: one event loop running the service."""
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - reported to starter
            self._error = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        """Record the loop, arm the ready event, run the service."""
        self._loop = asyncio.get_running_loop()
        self.service.on_ready = lambda _service: self._ready.set()
        await self.service.run()

    def start(self) -> "BackgroundService":
        """Boot the thread; returns once the socket is accepting."""
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServiceError("service did not come up within 30s")
        if self._error is not None:
            raise ServiceError(
                f"service failed to start: {self._error}"
            ) from self._error
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` once the service is up."""
        host, port = self.service.bound_host, self.service.bound_port
        if host is None or port is None:
            raise ServiceError("service is not running")
        return host, port

    def stop(self) -> None:
        """Request shutdown from any thread and join the loop thread."""
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.service.request_shutdown)
        self._thread.join(timeout=30)
        if self._error is not None:
            raise ServiceError(
                f"service thread failed: {self._error}"
            ) from self._error

    def __enter__(self) -> "BackgroundService":
        """Start on entry."""
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        """Stop on exit (errors from the thread propagate)."""
        self.stop()
