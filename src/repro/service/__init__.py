"""The multi-tenant OSAP service layer: stateless compute, stateful store.

This package turns the repository's safety-monitor runtime into a
long-lived network service.  Clients own their environments and send
observations over a line-delimited JSON socket
(:mod:`repro.service.protocol`); workers hold only per-scheme artifacts
(:mod:`repro.service.schemes`) and answer each observation with a
monitored action.  Every byte of session state — monitor windows, mode,
counters, policy RNG — lives in a pluggable two-tier
:class:`~repro.service.store.SessionStore` keyed by
``(tenant_id, session_id)``, so TTL-evicted sessions resume bitwise-
identically on any worker (:mod:`repro.service.store`).  The asyncio
server with admission control and load shedding is
:mod:`repro.service.server`; a blocking test/benchmark client is
:mod:`repro.service.client`.  Boot one from the command line with
``repro serve-api``.
"""

from repro.service.client import ServiceClient, expect_ok
from repro.service.protocol import (
    CODE_OVERLOADED,
    CODE_SHED,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
)
from repro.service.schemes import (
    DEMO_SCHEME,
    LinearSoftmaxPolicy,
    SchemeRuntime,
    build_demo_scheme,
)
from repro.service.server import (
    BackgroundService,
    SafetyService,
    ServiceConfig,
    UnknownSchemeError,
)
from repro.service.store import (
    DictBackend,
    DuplicateSessionError,
    HotSession,
    SQLiteBackend,
    SessionStore,
    StoreBackend,
    UnknownSessionError,
    make_backend,
)

__all__ = [
    "CODE_OVERLOADED",
    "CODE_SHED",
    "DEMO_SCHEME",
    "PROTOCOL_VERSION",
    "BackgroundService",
    "DictBackend",
    "DuplicateSessionError",
    "HotSession",
    "LinearSoftmaxPolicy",
    "ProtocolError",
    "SQLiteBackend",
    "SafetyService",
    "SchemeRuntime",
    "ServiceClient",
    "ServiceConfig",
    "SessionStore",
    "StoreBackend",
    "UnknownSchemeError",
    "UnknownSessionError",
    "build_demo_scheme",
    "decode_message",
    "encode_message",
    "expect_ok",
    "make_backend",
]
