"""A blocking client for the safety service's line-JSON socket API.

:class:`ServiceClient` wraps one TCP connection: every call sends one
request line and reads one response line (the protocol is strictly
request/response per connection).  Convenience methods return the raw
response payload dict — including structured failures — so callers can
branch on ``code`` (``overloaded``, ``shed``, ...) without exception
plumbing; :func:`expect_ok` converts a failure payload into a
:class:`~repro.errors.ServiceError` for callers that want to raise.
"""

from __future__ import annotations

import socket

from repro.errors import ServiceError
from repro.service import protocol

__all__ = ["ServiceClient", "expect_ok"]


def expect_ok(payload: dict) -> dict:
    """Return *payload* if it is a success; raise on a structured failure.

    The raised :class:`~repro.errors.ServiceError` carries the wire code
    in its ``code`` attribute.
    """
    if payload.get("ok"):
        return payload
    error = ServiceError(
        f"{payload.get('code', 'internal')}: {payload.get('message', '')}"
    )
    error.code = payload.get("code", "internal")
    raise error


class ServiceClient:
    """One blocking connection to a running safety service.

    Usable as a context manager; *timeout_s* bounds every socket
    operation so a hung service fails tests instead of wedging them.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._file = self._sock.makefile("rwb")

    def request(self, op: str, **fields) -> dict:
        """Send one request and return the decoded response payload."""
        self._file.write(protocol.encode_message({"op": op, **fields}))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError(f"service closed the connection during {op!r}")
        return protocol.decode_message(line)

    def ping(self) -> dict:
        """Health check; raises unless the service answers ok."""
        return expect_ok(self.request("ping"))

    def attach(
        self, tenant: str, session: str, scheme: str, seed: int = 0
    ) -> dict:
        """Register a session; returns the raw payload (may be a
        structured ``overloaded``/``shed`` rejection)."""
        return self.request(
            "attach", tenant=tenant, session=session, scheme=scheme, seed=seed
        )

    def step(self, tenant: str, session: str, observation) -> dict:
        """One monitored decision for *observation* (nested lists)."""
        return self.request(
            "step", tenant=tenant, session=session, observation=observation
        )

    def detach(self, tenant: str, session: str) -> dict:
        """Finish a session; returns its final counters on success."""
        return self.request("detach", tenant=tenant, session=session)

    def stats(self) -> dict:
        """Service occupancy and counters (never shed)."""
        return expect_ok(self.request("stats"))

    def evict(self, max_idle_s: float | None = None) -> dict:
        """Run one eviction pass now; returns the raw payload."""
        if max_idle_s is None:
            return self.request("evict")
        return self.request("evict", max_idle_s=max_idle_s)

    def reopen(self) -> dict:
        """Snapshot everything and rebuild the server's store handle."""
        return expect_ok(self.request("reopen"))

    def shutdown(self) -> dict:
        """Ask the service to stop; returns the acknowledgement."""
        return expect_ok(self.request("shutdown"))

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry: the connected client."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the connection on exit."""
        self.close()
