"""The service wire protocol: line-delimited JSON request/response.

Every message is one JSON object on one ``\\n``-terminated line.  A
request names its operation in ``op`` plus op-specific fields; the
response echoes ``op`` and carries ``ok``.  Failures are *structured*:
``{"ok": false, "code": ..., "message": ...}`` with a stable machine
code from the catalogue below, so clients can distinguish an admission
rejection (``overloaded``), transient back-pressure (``shed``), and
caller bugs (``unknown-session``) without parsing prose.

Operations (see ``docs/SERVICE.md`` for the full field tables):

* ``attach``   — register ``(tenant, session)`` under a scheme and seed.
* ``step``     — one monitored decision for an observation; returns the
  chosen action and the monitor's verdict.
* ``detach``   — finish a session and return its final counters.
* ``stats``    — service-level occupancy and counters (never shed).
* ``evict``    — run a TTL eviction pass now (idle bound overridable).
* ``reopen``   — snapshot everything and rebuild the store handle.
* ``ping`` / ``sleep`` / ``shutdown`` — health, diagnostics, teardown.

NaN never crosses the wire (:func:`encode_message` refuses it); the
sticky fast path's unmeasured signal value is transmitted as ``null``.
"""

from __future__ import annotations

import json

from repro.errors import ServiceError

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "CODE_BAD_REQUEST",
    "CODE_INTERNAL",
    "CODE_OVERLOADED",
    "CODE_SESSION_EXISTS",
    "CODE_SHED",
    "CODE_UNKNOWN_OP",
    "CODE_UNKNOWN_SCHEME",
    "CODE_UNKNOWN_SESSION",
    "ProtocolError",
    "decode_message",
    "encode_message",
    "fail",
    "ok",
]

#: Wire-format version, echoed by ``ping``; bump on breaking changes.
PROTOCOL_VERSION = 1

#: Upper bound on one request/response line (the asyncio reader limit).
MAX_LINE_BYTES = 1 << 20

#: The request line was not a JSON object (or violated a field contract).
CODE_BAD_REQUEST = "bad-request"
#: The request named an operation the service does not implement.
CODE_UNKNOWN_OP = "unknown-op"
#: ``attach`` named a scheme the service was not booted with.
CODE_UNKNOWN_SCHEME = "unknown-scheme"
#: The ``(tenant, session)`` key is neither hot nor in cold storage.
CODE_UNKNOWN_SESSION = "unknown-session"
#: ``attach`` named a ``(tenant, session)`` key that already exists.
CODE_SESSION_EXISTS = "session-exists"
#: Admission control: the hot-slot budget is exhausted (structured
#: rejection — live sessions are never degraded to make room).
CODE_OVERLOADED = "overloaded"
#: Load shedding: too many requests in flight; retry later.
CODE_SHED = "shed"
#: An unexpected server-side failure.
CODE_INTERNAL = "internal"


class ProtocolError(ServiceError):
    """A message violated the line-JSON wire format."""

    code = CODE_BAD_REQUEST


def encode_message(message: dict) -> bytes:
    """Serialize one message as a compact JSON line (UTF-8 bytes).

    Refuses NaN/Infinity — they are not JSON, and a client in another
    language would reject the line; senders must map unmeasured values
    to ``None`` first.
    """
    try:
        text = json.dumps(message, separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"message is not JSON-serializable: {exc}") from exc
    return (text + "\n").encode("utf-8")


def decode_message(line: bytes) -> dict:
    """Parse one received line into a message mapping.

    Raises :class:`ProtocolError` when the line is not a JSON object.
    """
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"line is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    return message


def ok(op: str, **fields) -> dict:
    """A success response for *op* with *fields* merged in."""
    return {"ok": True, "op": op, **fields}


def fail(code: str, message: str, **fields) -> dict:
    """A structured failure response carrying *code* and *message*."""
    return {"ok": False, "code": code, "message": message, **fields}
