"""A neural throughput predictor — the Fugu-style learned component.

Fugu [61] pairs classical MPC control with a DNN that predicts how long
the next chunk's transfer will take.  This module provides the analogous
learned component on the :mod:`repro.nn` substrate: an MLP mapping the
log of the last *history* per-chunk throughputs to the log of the next
one, trained by Adam on sliding windows from training traces.

Like Pensieve, this predictor is a creature of its training distribution,
which is exactly what makes the resulting MPC+DNN controller a second
test subject for online safety assurance.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import TrainingError
from repro.nn.network import Sequential, build_mlp
from repro.nn.optim import Adam
from repro.predictors.base import ThroughputPredictor
from repro.util.rng import rng_from_seed

__all__ = ["NeuralPredictor", "train_neural_predictor"]

_LOG_FLOOR_MBPS = 1e-3


class NeuralPredictor(ThroughputPredictor):
    """MLP over a log-throughput history window."""

    def __init__(self, network: Sequential, history: int) -> None:
        if history < 1:
            raise TrainingError(f"history must be >= 1, got {history}")
        self.network = network
        self.history = history
        self._window: deque[float] = deque(maxlen=history)

    def reset(self) -> None:
        self._window.clear()

    def update(self, throughput_mbps: float) -> None:
        self._window.append(self._check_sample(throughput_mbps))

    def predict(self) -> float:
        if len(self._window) < self.history:
            # Cold start: fall back to the window mean (or the default).
            if not self._window:
                return self.cold_start_mbps
            return float(np.mean(self._window))
        features = np.log(
            np.maximum(np.asarray(self._window), _LOG_FLOOR_MBPS)
        ).reshape(1, -1)
        log_prediction = float(self.network.forward(features)[0, 0])
        # Clamp to a sane range: the predictor must never demand a
        # negative or absurd rate from the controller.
        return float(np.clip(np.exp(log_prediction), 0.01, 200.0))


def _windows(
    series: np.ndarray, history: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sliding (history window, next sample) pairs in log space."""
    log_series = np.log(np.maximum(series, _LOG_FLOOR_MBPS))
    inputs = []
    targets = []
    for end in range(history, log_series.size):
        inputs.append(log_series[end - history : end])
        targets.append(log_series[end])
    return np.asarray(inputs), np.asarray(targets)


def train_neural_predictor(
    throughput_series: list[np.ndarray],
    history: int = 8,
    hidden_sizes: tuple[int, ...] = (32, 32),
    epochs: int = 300,
    learning_rate: float = 3e-3,
    seed: int = 0,
) -> NeuralPredictor:
    """Train a :class:`NeuralPredictor` on per-session throughput series.

    Full-batch Adam on the squared log-error.  Sessions shorter than
    ``history + 1`` samples contribute nothing; at least one usable
    window is required.
    """
    if epochs < 1:
        raise TrainingError(f"epochs must be >= 1, got {epochs}")
    all_inputs = []
    all_targets = []
    for series in throughput_series:
        series = np.asarray(series, dtype=float).ravel()
        if series.size <= history:
            continue
        inputs, targets = _windows(series, history)
        all_inputs.append(inputs)
        all_targets.append(targets)
    if not all_inputs:
        raise TrainingError(
            f"no training windows: all series shorter than history={history}"
        )
    inputs = np.concatenate(all_inputs)
    targets = np.concatenate(all_targets)
    rng = rng_from_seed(seed)
    network = build_mlp(history, list(hidden_sizes), 1, rng, activation="relu")
    optimizer = Adam(network.params, learning_rate=learning_rate)
    for _ in range(epochs):
        predictions = network.forward(inputs)[:, 0]
        diff = predictions - targets
        network.zero_grads()
        network.backward((2.0 * diff / diff.size).reshape(-1, 1))
        optimizer.step(network.grads)
    return NeuralPredictor(network, history=history)
