"""A recurrent (GRU) throughput predictor.

Where the window MLP of :mod:`repro.predictors.neural` sees a fixed
8-sample context, the GRU integrates the whole session so far — the kind
of model CS2P's per-session state and Fugu's follow-ups argue for on
cellular traces, whose throughput has minutes-scale regimes.

Trained like the MLP predictor: squared error on the log of the next
per-chunk throughput, full-batch Adam over sliding windows (the window
only bounds BPTT length; at inference the recurrent state still spans the
window's worth of most recent samples).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import TrainingError
from repro.nn.layers import Dense
from repro.nn.optim import Adam
from repro.nn.recurrent import GRU
from repro.predictors.base import ThroughputPredictor
from repro.util.rng import rng_from_seed

__all__ = ["RecurrentPredictor", "train_recurrent_predictor"]

_LOG_FLOOR_MBPS = 1e-3


class RecurrentPredictor(ThroughputPredictor):
    """GRU over the log-throughput stream, linear head to the next value."""

    def __init__(self, gru: GRU, head: Dense, context: int) -> None:
        if context < 1:
            raise TrainingError(f"context must be >= 1, got {context}")
        self.gru = gru
        self.head = head
        self.context = context
        self._window: deque[float] = deque(maxlen=context)

    def reset(self) -> None:
        self._window.clear()

    def update(self, throughput_mbps: float) -> None:
        self._window.append(self._check_sample(throughput_mbps))

    def predict(self) -> float:
        if not self._window:
            return self.cold_start_mbps
        log_series = np.log(
            np.maximum(np.asarray(self._window), _LOG_FLOOR_MBPS)
        ).reshape(1, -1, 1)
        hidden = self.gru.forward(log_series)
        log_prediction = float(self.head.forward(hidden)[0, 0])
        return float(np.clip(np.exp(log_prediction), 0.01, 200.0))


def train_recurrent_predictor(
    throughput_series: list[np.ndarray],
    context: int = 12,
    hidden_size: int = 16,
    epochs: int = 150,
    learning_rate: float = 5e-3,
    seed: int = 0,
) -> RecurrentPredictor:
    """Train a :class:`RecurrentPredictor` on per-session series."""
    if epochs < 1:
        raise TrainingError(f"epochs must be >= 1, got {epochs}")
    windows = []
    targets = []
    for series in throughput_series:
        log_series = np.log(
            np.maximum(np.asarray(series, dtype=float).ravel(), _LOG_FLOOR_MBPS)
        )
        for end in range(context, log_series.size):
            windows.append(log_series[end - context : end])
            targets.append(log_series[end])
    if not windows:
        raise TrainingError(
            f"no training windows: all series shorter than context={context}"
        )
    inputs = np.asarray(windows)[:, :, None]
    target_arr = np.asarray(targets)
    rng = rng_from_seed(seed)
    gru = GRU(1, hidden_size, rng)
    head = Dense(hidden_size, 1, rng)
    optimizer = Adam(gru.params + head.params, learning_rate=learning_rate)
    for _ in range(epochs):
        hidden = gru.forward(inputs)
        predictions = head.forward(hidden)[:, 0]
        diff = predictions - target_arr
        gru.zero_grads()
        head.zero_grads()
        grad_hidden = head.backward((2.0 * diff / diff.size)[:, None])
        gru.backward(grad_hidden)
        optimizer.step(gru.grads + head.grads)
    return RecurrentPredictor(gru, head, context=context)
