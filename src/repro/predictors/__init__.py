"""Throughput prediction: the other family of learned ABR systems.

The paper's case study uses Pensieve (deep RL); its named future work is
to extend OSAP to "other DL-based ABR systems (e.g., [61])" — systems
like CS2P [49] and Fugu [61] that pair a classical controller (MPC) with
a *learned throughput predictor*.  This package provides that substrate:

* :mod:`repro.predictors.classic` — last-sample, moving average,
  harmonic mean, EWMA, and double-exponential (Holt) predictors,
* :mod:`repro.predictors.markov` — a CS2P-style discretized Markov-chain
  predictor trained on traces,
* :mod:`repro.predictors.neural` — a neural predictor on the
  :mod:`repro.nn` substrate (the Fugu-style learned component),
* :mod:`repro.predictors.evaluation` — backtesting predictors on traces.

:class:`repro.policies.predictive.PredictiveMPCPolicy` plugs any of these
into an MPC controller, giving a second learned ABR system to wrap with
the safety machinery (see ``benchmarks/test_bench_extension_fugu.py``).
"""

from repro.predictors.base import ThroughputPredictor
from repro.predictors.classic import (
    EWMAPredictor,
    HarmonicMeanPredictor,
    HoltPredictor,
    LastSamplePredictor,
    MovingAveragePredictor,
)
from repro.predictors.evaluation import backtest_predictor
from repro.predictors.markov import MarkovPredictor
from repro.predictors.neural import NeuralPredictor, train_neural_predictor
from repro.predictors.recurrent import (
    RecurrentPredictor,
    train_recurrent_predictor,
)

__all__ = [
    "EWMAPredictor",
    "HarmonicMeanPredictor",
    "HoltPredictor",
    "LastSamplePredictor",
    "MarkovPredictor",
    "MovingAveragePredictor",
    "NeuralPredictor",
    "RecurrentPredictor",
    "ThroughputPredictor",
    "backtest_predictor",
    "train_neural_predictor",
    "train_recurrent_predictor",
]
