"""A CS2P-style discretized Markov-chain throughput predictor.

CS2P [49] observed that session throughput is well modelled by a hidden
Markov chain over discrete throughput states.  This predictor implements
the non-hidden variant: throughput is quantized into logarithmic bins,
a transition matrix is estimated from training traces (with Laplace
smoothing), and the prediction is the expected next-state throughput
given the current bin.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, TrainingError
from repro.predictors.base import ThroughputPredictor

__all__ = ["MarkovPredictor"]


class MarkovPredictor(ThroughputPredictor):
    """Log-binned Markov-chain predictor, trained offline on traces."""

    def __init__(
        self,
        num_bins: int = 16,
        min_mbps: float = 0.05,
        max_mbps: float = 100.0,
        smoothing: float = 0.5,
    ) -> None:
        if num_bins < 2:
            raise ConfigError(f"need >= 2 bins, got {num_bins}")
        if min_mbps <= 0 or max_mbps <= min_mbps:
            raise ConfigError(
                f"need 0 < min < max, got ({min_mbps}, {max_mbps})"
            )
        if smoothing <= 0:
            raise ConfigError(f"smoothing must be positive, got {smoothing}")
        self.num_bins = num_bins
        self.min_mbps = min_mbps
        self.max_mbps = max_mbps
        self.smoothing = smoothing
        self._edges = np.logspace(
            np.log10(min_mbps), np.log10(max_mbps), num_bins + 1
        )
        # Bin representative: geometric mean of its edges.
        self._centers = np.sqrt(self._edges[:-1] * self._edges[1:])
        self._transitions: np.ndarray | None = None
        self._current_bin: int | None = None

    def fit(self, throughput_series: list[np.ndarray]) -> "MarkovPredictor":
        """Estimate the transition matrix from per-session series."""
        if not throughput_series:
            raise TrainingError("no training series supplied")
        counts = np.full((self.num_bins, self.num_bins), self.smoothing)
        total_transitions = 0
        for series in throughput_series:
            bins = self._bin(np.asarray(series, dtype=float))
            for src, dst in zip(bins[:-1], bins[1:]):
                counts[src, dst] += 1.0
                total_transitions += 1
        if total_transitions == 0:
            raise TrainingError("training series contain no transitions")
        self._transitions = counts / counts.sum(axis=1, keepdims=True)
        return self

    def _bin(self, values: np.ndarray) -> np.ndarray:
        clipped = np.clip(values, self.min_mbps, self.max_mbps)
        indices = np.searchsorted(self._edges, clipped, side="right") - 1
        return np.clip(indices, 0, self.num_bins - 1)

    def reset(self) -> None:
        self._current_bin = None

    def update(self, throughput_mbps: float) -> None:
        sample = self._check_sample(throughput_mbps)
        self._current_bin = int(self._bin(np.asarray([sample]))[0])

    def predict(self) -> float:
        if self._transitions is None:
            raise TrainingError("MarkovPredictor used before fit()")
        if self._current_bin is None:
            return self.cold_start_mbps
        row = self._transitions[self._current_bin]
        return float(row @ self._centers)

    @property
    def transition_matrix(self) -> np.ndarray:
        """The fitted row-stochastic transition matrix (copy)."""
        if self._transitions is None:
            raise TrainingError("MarkovPredictor used before fit()")
        return self._transitions.copy()
