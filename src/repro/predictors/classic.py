"""Classical throughput predictors.

The standard estimators ABR systems have shipped with for a decade:
last-sample, windowed arithmetic and harmonic means (the harmonic mean is
what MPC [63] uses — it is the right average for "time to move N bytes"),
exponentially weighted moving average, and Holt's double-exponential
smoothing (level + trend).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ConfigError
from repro.predictors.base import ThroughputPredictor

__all__ = [
    "LastSamplePredictor",
    "MovingAveragePredictor",
    "HarmonicMeanPredictor",
    "EWMAPredictor",
    "HoltPredictor",
]


class LastSamplePredictor(ThroughputPredictor):
    """Predict that the next chunk sees exactly the last throughput."""

    def __init__(self) -> None:
        self._last: float | None = None

    def reset(self) -> None:
        self._last = None

    def update(self, throughput_mbps: float) -> None:
        self._last = self._check_sample(throughput_mbps)

    def predict(self) -> float:
        return self._last if self._last is not None else self.cold_start_mbps


class MovingAveragePredictor(ThroughputPredictor):
    """Arithmetic mean of the last *window* samples."""

    def __init__(self, window: int = 5) -> None:
        if window < 1:
            raise ConfigError(f"window must be >= 1, got {window}")
        self.window = window
        self._samples: deque[float] = deque(maxlen=window)

    def reset(self) -> None:
        self._samples.clear()

    def update(self, throughput_mbps: float) -> None:
        self._samples.append(self._check_sample(throughput_mbps))

    def predict(self) -> float:
        if not self._samples:
            return self.cold_start_mbps
        return float(np.mean(self._samples))


class HarmonicMeanPredictor(ThroughputPredictor):
    """Harmonic mean of the last *window* samples (MPC's estimator)."""

    def __init__(self, window: int = 5) -> None:
        if window < 1:
            raise ConfigError(f"window must be >= 1, got {window}")
        self.window = window
        self._samples: deque[float] = deque(maxlen=window)

    def reset(self) -> None:
        self._samples.clear()

    def update(self, throughput_mbps: float) -> None:
        self._samples.append(self._check_sample(throughput_mbps))

    def predict(self) -> float:
        if not self._samples:
            return self.cold_start_mbps
        inverse_sum = sum(1.0 / s for s in self._samples)
        return len(self._samples) / inverse_sum


class EWMAPredictor(ThroughputPredictor):
    """Exponentially weighted moving average with smoothing *alpha*."""

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._level: float | None = None

    def reset(self) -> None:
        self._level = None

    def update(self, throughput_mbps: float) -> None:
        sample = self._check_sample(throughput_mbps)
        if self._level is None:
            self._level = sample
        else:
            self._level = self.alpha * sample + (1.0 - self.alpha) * self._level

    def predict(self) -> float:
        return self._level if self._level is not None else self.cold_start_mbps


class HoltPredictor(ThroughputPredictor):
    """Holt's double-exponential smoothing: tracks level *and* trend.

    Useful on the correlated cellular traces where throughput ramps up or
    down over tens of seconds; the prediction is floored at a small
    positive value since a falling trend must not extrapolate below zero.
    """

    def __init__(self, alpha: float = 0.4, beta: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0 or not 0.0 < beta <= 1.0:
            raise ConfigError(
                f"alpha and beta must be in (0, 1], got ({alpha}, {beta})"
            )
        self.alpha = alpha
        self.beta = beta
        self._level: float | None = None
        self._trend = 0.0

    def reset(self) -> None:
        self._level = None
        self._trend = 0.0

    def update(self, throughput_mbps: float) -> None:
        sample = self._check_sample(throughput_mbps)
        if self._level is None:
            self._level = sample
            self._trend = 0.0
            return
        previous_level = self._level
        self._level = (
            self.alpha * sample + (1.0 - self.alpha) * (self._level + self._trend)
        )
        self._trend = (
            self.beta * (self._level - previous_level)
            + (1.0 - self.beta) * self._trend
        )

    def predict(self) -> float:
        if self._level is None:
            return self.cold_start_mbps
        return max(self._level + self._trend, 0.01)
