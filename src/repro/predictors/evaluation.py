"""Backtesting throughput predictors on traces.

Feeds a predictor each trace's samples in order, collecting one-step-ahead
predictions, and reports the standard accuracy metrics (MAE, RMSE, and
mean absolute percentage error).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.predictors.base import ThroughputPredictor

__all__ = ["PredictionScore", "backtest_predictor"]


@dataclass(frozen=True)
class PredictionScore:
    """One-step-ahead accuracy of a predictor over a set of series."""

    mae: float
    rmse: float
    mape: float
    count: int


def backtest_predictor(
    predictor: ThroughputPredictor,
    throughput_series: list[np.ndarray],
    warmup: int = 1,
) -> PredictionScore:
    """Score one-step-ahead predictions across *throughput_series*.

    The first *warmup* samples of each series only update the predictor;
    predictions are scored from there on.
    """
    if warmup < 1:
        raise ConfigError(f"warmup must be >= 1, got {warmup}")
    errors = []
    relative_errors = []
    squared_errors = []
    for series in throughput_series:
        series = np.asarray(series, dtype=float).ravel()
        if series.size <= warmup:
            continue
        predictor.reset()
        for sample in series[:warmup]:
            predictor.update(float(sample))
        for actual in series[warmup:]:
            predicted = predictor.predict()
            errors.append(abs(predicted - actual))
            squared_errors.append((predicted - actual) ** 2)
            relative_errors.append(abs(predicted - actual) / max(actual, 1e-9))
            predictor.update(float(actual))
    if not errors:
        raise ConfigError("no series long enough to score")
    return PredictionScore(
        mae=float(np.mean(errors)),
        rmse=float(np.sqrt(np.mean(squared_errors))),
        mape=float(np.mean(relative_errors)),
        count=len(errors),
    )
