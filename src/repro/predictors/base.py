"""The throughput-predictor interface.

A predictor consumes the measured per-chunk throughput stream one sample
at a time and, at any point, predicts the throughput of the next chunk
download.  Implementations must tolerate being asked to predict before
any sample has arrived (return a conservative positive default).
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["ThroughputPredictor"]

_DEFAULT_PREDICTION_MBPS = 0.5


class ThroughputPredictor:
    """Base predictor: an online stream model of link throughput."""

    #: Prediction returned before any sample has been observed.
    cold_start_mbps: float = _DEFAULT_PREDICTION_MBPS

    def reset(self) -> None:
        """Clear per-session state."""
        raise NotImplementedError

    def update(self, throughput_mbps: float) -> None:
        """Fold one measured per-chunk throughput into the model."""
        raise NotImplementedError

    def predict(self) -> float:
        """Predicted throughput (Mbit/s) of the next chunk download."""
        raise NotImplementedError

    def _check_sample(self, throughput_mbps: float) -> float:
        if throughput_mbps <= 0:
            raise ConfigError(
                f"throughput samples must be positive, got {throughput_mbps}"
            )
        return float(throughput_mbps)
