"""Deterministic parallel execution for the experiment pipeline.

The executor gives every embarrassingly parallel loop in the library —
ensemble-member training, per-(policy, trace) session evaluation,
per-distribution suite builds — the same guarantees: bitwise-identical
results to the serial path, one-time context shipping per worker, a
transparent serial fallback (``max_workers=1``, platforms without
``fork``, or nested use inside a worker), and bounded fault tolerance —
per-task retries with exponential backoff, per-task deadlines, pool
respawn after worker death, and a structured serial degradation when the
pool is irrecoverable.  The :mod:`repro.parallel.chaos` harness injects
deterministic faults at the executor's and the trainers' hook sites so
all of the above is tested against real kills, raises, and stalls.

:mod:`repro.parallel.shm` complements the executor with zero-copy
context publication: one pickled-with-buffers copy of a heavyweight
worker context (ensemble weights included) in a shared-memory block,
mapped read-only by every worker instead of re-pickled per worker.
"""

from repro.parallel.executor import (
    backoff_delay,
    in_worker,
    parallel_map,
    resolve_max_workers,
    resolve_pool_respawns,
    resolve_task_retries,
    resolve_task_timeout,
)
from repro.parallel.shm import (
    PayloadHandle,
    SharedPayload,
    attach_payload,
    publish_payload,
    shm_enabled,
)

__all__ = [
    "parallel_map",
    "resolve_max_workers",
    "resolve_task_retries",
    "resolve_task_timeout",
    "resolve_pool_respawns",
    "backoff_delay",
    "in_worker",
    "PayloadHandle",
    "SharedPayload",
    "attach_payload",
    "publish_payload",
    "shm_enabled",
]
