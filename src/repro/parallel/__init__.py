"""Deterministic parallel execution for the experiment pipeline.

The executor gives every embarrassingly parallel loop in the library —
ensemble-member training, per-(policy, trace) session evaluation,
per-distribution suite builds — the same three guarantees: bitwise-
identical results to the serial path, one-time context shipping per
worker, and a transparent serial fallback (``max_workers=1``, platforms
without ``fork``, or nested use inside a worker).
"""

from repro.parallel.executor import in_worker, parallel_map, resolve_max_workers

__all__ = ["parallel_map", "resolve_max_workers", "in_worker"]
