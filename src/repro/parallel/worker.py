"""Module-level task functions for :func:`repro.parallel.executor.parallel_map`.

Process pools pickle tasks by *name*, so every parallel loop in the
library maps one of the functions below over a list of small, explicit
items (seeds, trace indices, dataset names).  The heavyweight context —
manifest, traces, trained policies, configs — is shipped **once per
worker** through the matching ``init_*`` initializer into a module-level
state dict, instead of being re-pickled for every task.

Each task family keeps its own state dict so the serial fallback can nest
families (e.g. a serial distribution build running a serial session sweep)
without clobbering anything.
"""

from __future__ import annotations

from typing import Any

from repro.abr.session import run_session

__all__ = [
    "init_agent_training",
    "train_agent_member",
    "init_value_training",
    "train_value_member",
    "init_sessions",
    "evaluate_session",
    "init_distributions",
    "build_distribution",
]

_AGENT_STATE: dict[str, Any] = {}
_VALUE_STATE: dict[str, Any] = {}
_SESSION_STATE: dict[str, Any] = {}
_DISTRIBUTION_STATE: dict[str, Any] = {}


# -- agent-ensemble training -------------------------------------------------

def init_agent_training(
    manifest, traces, config, qoe_metric, cache=None, checkpoint_every=0
) -> None:
    """Ship the training context for :func:`train_agent_member`.

    With *cache* (an :class:`~repro.experiments.artifacts.ArtifactCache`)
    and a positive *checkpoint_every*, each member checkpoints its
    training into the cache and resumes from its own saved state — which
    is how a retried or requeued member task continues instead of
    restarting from epoch 0.
    """
    _AGENT_STATE.update(
        manifest=manifest,
        traces=traces,
        config=config,
        qoe_metric=qoe_metric,
        cache=cache,
        checkpoint_every=checkpoint_every,
    )


def train_agent_member(seed: int):
    """Train one ensemble member that differs only by its seed."""
    from repro.pensieve.checkpoint import Checkpointer
    from repro.pensieve.ensemble import agent_member_checkpoint_artifact
    from repro.pensieve.training import A2CTrainer

    state = _AGENT_STATE
    trainer = A2CTrainer(
        state["manifest"],
        state["traces"],
        config=state["config"].with_seed(seed),
        qoe_metric=state["qoe_metric"],
    )
    cache = state.get("cache")
    every = state.get("checkpoint_every", 0)
    if cache is not None and every > 0:
        trainer.checkpointer = Checkpointer(
            cache, agent_member_checkpoint_artifact(seed), every
        )
    return trainer.train()


# -- value-ensemble training -------------------------------------------------

def init_value_training(
    observations,
    targets,
    num_bitrates,
    epochs,
    learning_rate,
    filters,
    hidden,
    cache=None,
    checkpoint_every=0,
) -> None:
    """Ship the shared regression dataset for :func:`train_value_member`."""
    _VALUE_STATE.update(
        observations=observations,
        targets=targets,
        num_bitrates=num_bitrates,
        epochs=epochs,
        learning_rate=learning_rate,
        filters=filters,
        hidden=hidden,
        cache=cache,
        checkpoint_every=checkpoint_every,
    )


def train_value_member(seed: int):
    """Train one value function on the shared (observation, return) data."""
    from repro.nn.optim import RMSProp
    from repro.parallel import chaos
    from repro.pensieve.agent import PensieveValueFunction
    from repro.pensieve.checkpoint import Checkpointer
    from repro.pensieve.ensemble import (
        _regression_checkpoint_payload,
        _restore_regression_checkpoint,
        value_member_checkpoint_artifact,
    )
    from repro.pensieve.model import CriticNetwork
    from repro.util.rng import rng_from_seed

    state = _VALUE_STATE
    observations = state["observations"]
    targets = state["targets"]
    epochs = state["epochs"]
    critic = CriticNetwork(
        state["num_bitrates"],
        rng_from_seed(seed),
        filters=state["filters"],
        hidden=state["hidden"],
    )
    optimizer = RMSProp(critic.params, learning_rate=state["learning_rate"])
    cache = state.get("cache")
    every = state.get("checkpoint_every", 0)
    checkpointer = None
    start = 0
    if cache is not None and every > 0:
        checkpointer = Checkpointer(
            cache, value_member_checkpoint_artifact(seed), every
        )
        loaded = checkpointer.load()
        if loaded is not None:
            start = _restore_regression_checkpoint(
                *loaded,
                engine="value-member",
                seeds=[seed],
                epochs_total=epochs,
                params=critic.params,
                optimizer=optimizer,
            )
    for epoch in range(start, epochs):
        values = critic.values(observations)
        diff = values - targets
        critic.zero_grads()
        critic.backward(2.0 * diff / diff.size)
        optimizer.step(critic.grads)
        if checkpointer is not None and checkpointer.due(epoch + 1, epochs):
            checkpointer.save(
                *_regression_checkpoint_payload(
                    "value-member",
                    [seed],
                    epochs,
                    epoch + 1,
                    critic.params,
                    optimizer._mean_square,
                )
            )
        chaos.maybe_fire("epoch", epoch)
    return PensieveValueFunction(critic, name=f"value-{seed}")


# -- per-(policy, trace) session evaluation ----------------------------------

def init_sessions(manifest, policies, trace_groups, qoe_metric) -> None:
    """Ship evaluation context for :func:`evaluate_session`.

    *policies* maps a policy key to a policy object; *trace_groups* maps a
    group key (e.g. a test-dataset name) to its list of traces.
    """
    _SESSION_STATE.update(
        manifest=manifest,
        policies=policies,
        trace_groups=trace_groups,
        qoe_metric=qoe_metric,
    )


def evaluate_session(task: tuple[str, str, int, int]) -> tuple[float, float]:
    """Run one (policy, trace, seed) session; return (QoE, default fraction).

    The task is ``(policy_key, group_key, trace_index, seed)`` — pure data,
    so the same task always produces the same floats in any process.
    """
    policy_key, group_key, trace_index, seed = task
    state = _SESSION_STATE
    result = run_session(
        state["policies"][policy_key],
        state["manifest"],
        state["trace_groups"][group_key][trace_index],
        qoe_metric=state["qoe_metric"],
        seed=seed,
    )
    return float(result.qoe), float(result.default_fraction)


# -- per-distribution suite builds -------------------------------------------

def init_distributions(config, weight_root=None) -> None:
    """Ship the experiment config (and optional weight-cache root
    directory) for :func:`build_distribution`."""
    _DISTRIBUTION_STATE.update(config=config, weight_root=weight_root)


def build_distribution(train_name: str) -> dict:
    """Run the full offline phase + evaluation for one training
    distribution (the body of ``run_training_distribution``)."""
    from repro.experiments.training_runs import compute_training_distribution

    return compute_training_distribution(
        _DISTRIBUTION_STATE["config"],
        train_name,
        weight_root=_DISTRIBUTION_STATE.get("weight_root"),
    )


def _clear_state() -> None:
    """Reset all task-family state (test hook)."""
    for state in (_AGENT_STATE, _VALUE_STATE, _SESSION_STATE, _DISTRIBUTION_STATE):
        state.clear()
