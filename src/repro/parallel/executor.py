"""A deterministic process-pool executor for embarrassingly parallel loops.

:func:`parallel_map` is the single primitive the experiment, ensemble, and
evaluation layers build on.  Its contract:

* **Determinism** — results are collected in item order and every item is
  an explicit, self-contained description of its work (callers put the
  per-item seed *inside* the item, fanned out with
  :func:`repro.util.rng.spawn_seeds`), so the output is bitwise-identical
  whatever the worker count, including the serial fallback.
* **One-time state shipping** — *initializer*/*initargs* run once per
  worker process (not once per task), which is where callers ship the
  manifest, traces, and trained policies; tasks themselves stay tiny.
* **Transparent serial fallback** — with ``max_workers=1``, with fewer
  than two items, on platforms without ``fork``, or when already inside a
  worker process (no nested pools), the same function/items are executed
  in-process in order.

Worker-count resolution: an explicit ``max_workers`` argument wins,
otherwise the ``REPRO_MAX_WORKERS`` environment variable, otherwise 1
(serial).  Parallelism is therefore always opt-in and the default
behaviour matches the original serial code exactly.  The resolved count
is additionally capped at ``os.cpu_count()``: these are CPU-bound numpy
tasks, so oversubscribing cores only adds fork and scheduling overhead
(on a single-CPU machine every request degrades to the serial fallback,
which benchmarking showed to be faster there than any pool).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ParallelError

__all__ = ["parallel_map", "resolve_max_workers", "in_worker"]

#: Environment variable consulted when ``max_workers`` is not given.
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"

_IN_WORKER = False


def in_worker() -> bool:
    """Whether this process is a :func:`parallel_map` worker.

    Nested ``parallel_map`` calls inside a worker degrade to the serial
    fallback, so callers can parallelize at whatever layer they like
    without worrying about pool-in-pool explosions.
    """
    return _IN_WORKER


def resolve_max_workers(max_workers: int | None = None) -> int:
    """Resolve the effective worker count.

    Precedence: explicit argument, then the ``REPRO_MAX_WORKERS``
    environment variable, then 1 (serial).
    """
    if max_workers is None:
        env = os.environ.get(MAX_WORKERS_ENV, "").strip()
        if not env:
            return 1
        try:
            max_workers = int(env)
        except ValueError as exc:
            raise ParallelError(
                f"{MAX_WORKERS_ENV} must be an integer, got {env!r}"
            ) from exc
    if max_workers < 1:
        raise ParallelError(f"max_workers must be >= 1, got {max_workers}")
    return max_workers


def _worker_bootstrap(
    initializer: Callable[..., None] | None, initargs: Sequence[Any]
) -> None:
    """Per-worker setup: mark the process as a worker, then run the
    caller's initializer (which typically fills module-level state)."""
    global _IN_WORKER
    _IN_WORKER = True
    if initializer is not None:
        initializer(*initargs)


def _serial_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    initializer: Callable[..., None] | None,
    initargs: Sequence[Any],
) -> list[Any]:
    if initializer is not None:
        initializer(*initargs)
    return [fn(item) for item in items]


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    max_workers: int | None = None,
    initializer: Callable[..., None] | None = None,
    initargs: Sequence[Any] = (),
    chunk_size: int | None = None,
) -> list[Any]:
    """Map *fn* over *items*, optionally across a process pool.

    *fn* and *initializer* must be module-level functions (they are
    pickled by name); see :mod:`repro.parallel.worker` for the task
    functions the library ships.  Results come back in item order.
    ``chunk_size`` controls scheduling granularity (default: about four
    chunks per worker).

    The pool size never exceeds ``os.cpu_count()``: more workers than
    cores cannot speed up CPU-bound tasks, and on a one-CPU machine the
    serial fallback avoids pure fork/pickle overhead.
    """
    items = list(items)
    if chunk_size is not None and chunk_size < 1:
        raise ParallelError(f"chunk_size must be >= 1, got {chunk_size}")
    workers = min(
        resolve_max_workers(max_workers),
        max(len(items), 1),
        os.cpu_count() or 1,
    )
    if (
        workers == 1
        or len(items) < 2
        or in_worker()
        or "fork" not in multiprocessing.get_all_start_methods()
    ):
        return _serial_map(fn, items, initializer, initargs)
    if chunk_size is None:
        chunk_size = max(1, len(items) // (workers * 4))
    context = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=context,
        initializer=_worker_bootstrap,
        initargs=(initializer, tuple(initargs)),
    ) as pool:
        return list(pool.map(fn, items, chunksize=chunk_size))
