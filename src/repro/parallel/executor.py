"""A deterministic, fault-tolerant process-pool executor.

:func:`parallel_map` is the single primitive the experiment, ensemble, and
evaluation layers build on.  Its contract:

* **Determinism** — results are collected in item order and every item is
  an explicit, self-contained description of its work (callers put the
  per-item seed *inside* the item, fanned out with
  :func:`repro.util.rng.spawn_seeds`), so the output is bitwise-identical
  whatever the worker count, including the serial fallback — and whatever
  faults were recovered from along the way, because a retried task is the
  same pure function of the same item.
* **One-time state shipping** — *initializer*/*initargs* run once per
  worker process (not once per task), which is where callers ship the
  manifest, traces, and trained policies; tasks themselves stay tiny.
* **Transparent serial fallback** — with ``max_workers=1``, with fewer
  than two items, on platforms without ``fork``, or when already inside a
  worker process (no nested pools), the same function/items are executed
  in-process in order.
* **Fault tolerance** — a task that raises may be retried (``retries`` /
  ``REPRO_TASK_RETRIES``) with bounded exponential backoff; a worker that
  dies outright (segfault, OOM kill, ``os._exit``) triggers a pool
  respawn that requeues *only* the unfinished tasks; a task that stalls
  past its deadline (``task_timeout`` / ``REPRO_TASK_TIMEOUT``) has its
  pool killed and is treated like a failed attempt.  When the pool keeps
  breaking faster than its respawn budget (``REPRO_POOL_RESPAWNS``), the
  remaining tasks degrade to in-process serial execution with a
  structured reason, so the pipeline finishes rather than flapping.
* **Attributed failures** — once a task exhausts its attempt budget, the
  *original* exception re-raises in the parent with a
  :class:`ParallelError` cause naming the failing task; a worker death
  or deadline surfaces as a :class:`ParallelError` naming the tasks the
  dead worker held, never a hang and never a bare ``BrokenProcessPool``.

With the defaults (no retries, no deadline) the failure semantics are
exactly the historical ones: the first fault is fatal and attributed.

Worker-count resolution: an explicit ``max_workers`` argument wins,
otherwise the ``REPRO_MAX_WORKERS`` environment variable, otherwise 1
(serial).  Parallelism is therefore always opt-in and the default
behaviour matches the original serial code exactly.  The resolved count
is additionally capped at ``os.cpu_count()``: these are CPU-bound numpy
tasks, so oversubscribing cores only adds fork and scheduling overhead
(on a single-CPU machine every request degrades to the serial fallback,
which benchmarking showed to be faster there than any pool).

When metric collection is on (:mod:`repro.obs`), every call records task
dispatch/completion counters, the pool width, per-chunk worker walls, an
end-of-pool worker-utilization gauge, and — new with fault tolerance —
retry/respawn/timeout counters plus structured events for every recovery
action; serial fallbacks record which condition triggered them.  The
chaos harness (:mod:`repro.parallel.chaos`) hooks each task's execution
inside the worker, which is how the fault paths are tested
deterministically.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Sequence

from repro import obs
from repro.errors import ParallelError
from repro.parallel import chaos

__all__ = [
    "parallel_map",
    "resolve_max_workers",
    "resolve_task_retries",
    "resolve_task_timeout",
    "resolve_pool_respawns",
    "backoff_delay",
    "in_worker",
]

#: Environment variable consulted when ``max_workers`` is not given.
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"
#: Environment variable consulted when ``retries`` is not given (default 0).
TASK_RETRIES_ENV = "REPRO_TASK_RETRIES"
#: Environment variable consulted when ``task_timeout`` is not given
#: (seconds per task; unset means no deadline).
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"
#: Environment variable bounding pool respawns per call (default 2).
POOL_RESPAWNS_ENV = "REPRO_POOL_RESPAWNS"

#: First retry backoff; doubles per attempt up to :data:`BACKOFF_MAX_S`.
BACKOFF_BASE_S = 0.05
#: Upper bound of the exponential retry backoff.
BACKOFF_MAX_S = 2.0
#: Slack added to every deadline wait, absorbing fork/initializer/pickle
#: overhead so ``task_timeout`` can be sized to the task alone.
DEADLINE_GRACE_S = 0.5

_IN_WORKER = False


def in_worker() -> bool:
    """Whether this process is a :func:`parallel_map` worker.

    Nested ``parallel_map`` calls inside a worker degrade to the serial
    fallback, so callers can parallelize at whatever layer they like
    without worrying about pool-in-pool explosions.
    """
    return _IN_WORKER


def resolve_max_workers(max_workers: int | None = None) -> int:
    """Resolve the effective worker count.

    Precedence: explicit argument, then the ``REPRO_MAX_WORKERS``
    environment variable, then 1 (serial).
    """
    if max_workers is None:
        env = os.environ.get(MAX_WORKERS_ENV, "").strip()
        if not env:
            return 1
        try:
            max_workers = int(env)
        except ValueError as exc:
            raise ParallelError(
                f"{MAX_WORKERS_ENV} must be a positive integer "
                f"(e.g. {MAX_WORKERS_ENV}=4), got {env!r}"
            ) from exc
        if max_workers < 1:
            raise ParallelError(
                f"{MAX_WORKERS_ENV} must be >= 1, got {max_workers}; "
                f"unset it (or use {MAX_WORKERS_ENV}=1) to run serially"
            )
    if max_workers < 1:
        raise ParallelError(f"max_workers must be >= 1, got {max_workers}")
    return max_workers


def resolve_task_retries(retries: int | None = None) -> int:
    """Resolve the per-task retry budget (attempts beyond the first).

    Precedence: explicit argument, then ``REPRO_TASK_RETRIES``, then 0 —
    i.e. fault tolerance is opt-in and the default behaviour is the
    historical fail-fast one.
    """
    if retries is None:
        env = os.environ.get(TASK_RETRIES_ENV, "").strip()
        if not env:
            return 0
        try:
            retries = int(env)
        except ValueError as exc:
            raise ParallelError(
                f"{TASK_RETRIES_ENV} must be a non-negative integer, got {env!r}"
            ) from exc
    if retries < 0:
        raise ParallelError(f"retries must be >= 0, got {retries}")
    return retries


def resolve_task_timeout(task_timeout: float | None = None) -> float | None:
    """Resolve the per-task deadline in seconds (``None`` = no deadline).

    Precedence: explicit argument, then ``REPRO_TASK_TIMEOUT``, then no
    deadline.  The deadline must cover one task's work; pool startup and
    result shipping ride on :data:`DEADLINE_GRACE_S`.
    """
    if task_timeout is None:
        env = os.environ.get(TASK_TIMEOUT_ENV, "").strip()
        if not env:
            return None
        try:
            task_timeout = float(env)
        except ValueError as exc:
            raise ParallelError(
                f"{TASK_TIMEOUT_ENV} must be a positive number of seconds, "
                f"got {env!r}"
            ) from exc
    if task_timeout <= 0:
        raise ParallelError(
            f"task_timeout must be positive, got {task_timeout}"
        )
    return task_timeout


def resolve_pool_respawns() -> int:
    """How many pool respawns one :func:`parallel_map` call may spend
    before degrading to serial execution (``REPRO_POOL_RESPAWNS``,
    default 2)."""
    env = os.environ.get(POOL_RESPAWNS_ENV, "").strip()
    if not env:
        return 2
    try:
        respawns = int(env)
    except ValueError as exc:
        raise ParallelError(
            f"{POOL_RESPAWNS_ENV} must be a non-negative integer, got {env!r}"
        ) from exc
    if respawns < 0:
        raise ParallelError(f"pool respawns must be >= 0, got {respawns}")
    return respawns


def backoff_delay(attempt: int) -> float:
    """Bounded exponential backoff before retry *attempt* (1-based):
    ``BACKOFF_BASE_S * 2**(attempt-1)`` capped at :data:`BACKOFF_MAX_S`."""
    return min(BACKOFF_BASE_S * (2.0 ** (attempt - 1)), BACKOFF_MAX_S)


class _TaskFailure(Exception):
    """Picklable wrapper shipping a task's exception back with attribution.

    All fields ride in ``args`` so the default exception pickling used by
    the pool's result channel reconstructs the wrapper (and the original
    exception inside it) in the parent process.  ``completed`` carries the
    chunk's already-finished ``(index, value)`` pairs so a retry requeues
    only the failing task and its untouched successors.
    """

    def __init__(
        self,
        index: int,
        item_repr: str,
        exception: BaseException,
        completed: list[tuple[int, Any]],
    ) -> None:
        super().__init__(index, item_repr, exception, completed)
        self.index = index
        self.item_repr = item_repr
        self.exception = exception
        self.completed = completed


def _worker_bootstrap(
    initializer: Callable[..., None] | None, initargs: Sequence[Any]
) -> None:
    """Per-worker setup: mark the process as a worker, then run the
    caller's initializer (which typically fills module-level state)."""
    global _IN_WORKER
    _IN_WORKER = True
    if initializer is not None:
        initializer(*initargs)


def _run_chunk(
    fn: Callable[[Any], Any], pairs: Sequence[tuple[int, Any]]
) -> tuple[list[tuple[int, Any]], float]:
    """Run one chunk of ``(index, item)`` tasks inside a worker.

    Returns ``(completed_pairs, wall_seconds)`` — the worker-side wall
    time is what the parent aggregates into the utilization gauge.  A
    failing task is wrapped in :class:`_TaskFailure` carrying its global
    index and the chunk's completed prefix.  The chaos harness hooks each
    task here (site ``"task"``, by global index).
    """
    start = time.perf_counter()
    completed: list[tuple[int, Any]] = []
    for index, item in pairs:
        try:
            chaos.maybe_fire("task", index)
            completed.append((index, fn(item)))
        except BaseException as exc:
            raise _TaskFailure(index, repr(item), exc, completed) from exc
    return completed, time.perf_counter() - start


def _serial_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    initializer: Callable[..., None] | None,
    initargs: Sequence[Any],
) -> list[Any]:
    if initializer is not None:
        initializer(*initargs)
    return [fn(item) for item in items]


def _serial_reason(workers: int, n_items: int) -> str:
    """Why this call is degrading to the serial fallback (metric label)."""
    if n_items < 2:
        return "few-items"
    if in_worker():
        return "nested-pool"
    if "fork" not in multiprocessing.get_all_start_methods():
        return "no-fork"
    if workers == 1 and (os.cpu_count() or 1) == 1:
        return "cpu-cap"
    return "serial-requested"


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    max_workers: int | None = None,
    initializer: Callable[..., None] | None = None,
    initargs: Sequence[Any] = (),
    chunk_size: int | None = None,
    retries: int | None = None,
    task_timeout: float | None = None,
) -> list[Any]:
    """Map *fn* over *items*, optionally across a process pool.

    *fn* and *initializer* must be module-level functions (they are
    pickled by name); see :mod:`repro.parallel.worker` for the task
    functions the library ships.  Results come back in item order.
    ``chunk_size`` controls scheduling granularity (default: about four
    chunks per worker).

    ``retries`` bounds how many times one task may fail (by raising,
    stalling past ``task_timeout``, or taking its worker down) before the
    call gives up; retried attempts back off exponentially (bounded) and
    rerun the identical item, so recovered runs return the same values.
    Both knobs also resolve from ``REPRO_TASK_RETRIES`` /
    ``REPRO_TASK_TIMEOUT`` and default to the historical fail-fast,
    no-deadline behaviour.

    The pool size never exceeds ``os.cpu_count()``: more workers than
    cores cannot speed up CPU-bound tasks, and on a one-CPU machine the
    serial fallback avoids pure fork/pickle overhead.

    A task exception that exhausts its attempts re-raises in the parent
    with its original type; its ``__cause__`` is a :class:`ParallelError`
    naming the task.  A worker death or missed deadline that exhausts its
    attempts raises :class:`ParallelError` naming the tasks the worker
    held.
    """
    items = list(items)
    if chunk_size is not None and chunk_size < 1:
        raise ParallelError(f"chunk_size must be >= 1, got {chunk_size}")
    retries = resolve_task_retries(retries)
    task_timeout = resolve_task_timeout(task_timeout)
    workers = min(
        resolve_max_workers(max_workers),
        max(len(items), 1),
        os.cpu_count() or 1,
    )
    if (
        workers == 1
        or len(items) < 2
        or in_worker()
        or "fork" not in multiprocessing.get_all_start_methods()
    ):
        if obs.enabled():
            obs.inc("executor.serial_fallback", reason=_serial_reason(workers, len(items)))
            obs.inc("executor.tasks.dispatched", len(items), mode="serial")
        values = _serial_map(fn, items, initializer, initargs)
        if obs.enabled():
            obs.inc("executor.tasks.completed", len(values), mode="serial")
        return values
    if chunk_size is None:
        chunk_size = max(1, len(items) // (workers * 4))
    return _parallel_map_pool(
        fn, items, workers, initializer, initargs, chunk_size, retries, task_timeout
    )


def _kill_pool_processes(pool: ProcessPoolExecutor) -> None:
    """Forcibly terminate a pool's worker processes.

    Used when a task stalls past its deadline: the stuck worker would
    otherwise block shutdown forever.  Reaches into the executor's
    process table (stable across CPython 3.10–3.12) but tolerates its
    absence.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:
            pass


class _PoolFault(Exception):
    """Internal control flow: the current pool must be abandoned.

    ``lost`` holds the index chunks whose results were not collected and
    must be requeued on the next pool; ``kind`` is ``"death"`` or
    ``"stall"`` (a stall additionally requires killing the stuck worker).
    """

    def __init__(self, kind: str, lost: list[tuple[int, ...]]) -> None:
        super().__init__(kind)
        self.kind = kind
        self.lost = lost


class _MapState:
    """Bookkeeping shared across pool generations of one call."""

    def __init__(self, items: Sequence[Any], retries: int) -> None:
        self.items = items
        self.retries = retries
        self.results: list[Any] = [None] * len(items)
        self.done = [False] * len(items)
        self.attempts: dict[int, int] = {}
        self.busy_seconds = 0.0

    def store(self, completed: Sequence[tuple[int, Any]]) -> None:
        for index, value in completed:
            self.results[index] = value
            self.done[index] = True
        if completed and obs.enabled():
            obs.inc("executor.tasks.completed", len(completed), mode="parallel")

    def unfinished(self, chunk: Sequence[int]) -> tuple[int, ...]:
        return tuple(index for index in chunk if not self.done[index])

    def remaining(self) -> list[int]:
        return [index for index, done in enumerate(self.done) if not done]

    def charge(self, indices: Sequence[int], why: str, fail_fast: bool = True) -> int:
        """Count one failed attempt against every task in *indices*;
        returns the highest attempt count.  With *fail_fast* (the default)
        raises the attributed :class:`ParallelError` once any task
        exhausts its budget."""
        worst = 0
        for index in indices:
            count = self.attempts.get(index, 0) + 1
            self.attempts[index] = count
            worst = max(worst, count)
        if fail_fast and worst > self.retries and indices:
            first, last = min(indices), max(indices)
            if why == "stall":
                raise ParallelError(
                    f"tasks {first}..{last} (first item: "
                    f"{self.items[first]!r}) exceeded the per-task deadline "
                    f"and exhausted {self.retries + 1} attempt(s); raise "
                    f"{TASK_TIMEOUT_ENV} or rerun with max_workers=1 to "
                    "debug the stalling task in-process"
                )
            raise ParallelError(
                f"a worker process died while running tasks {first}..{last} "
                f"(first item: {self.items[first]!r}); the pool cannot "
                "continue — rerun with max_workers=1 to debug the failing "
                "task in-process"
            )
        return worst


def _chunked(indices: Sequence[int], chunk_size: int) -> list[tuple[int, ...]]:
    return [
        tuple(indices[offset : offset + chunk_size])
        for offset in range(0, len(indices), chunk_size)
    ]


def _harvest(
    state: _MapState,
    submitted: Sequence[tuple[tuple[int, ...], Future]],
) -> list[tuple[int, ...]]:
    """After a pool fault: collect every already-finished future's results
    and return the unfinished chunks (to be requeued, uncharged)."""
    lost: list[tuple[int, ...]] = []
    for chunk, future in submitted:
        future.cancel()
        salvage: tuple[int, ...] | None = None
        if future.done() and not future.cancelled():
            try:
                completed, chunk_wall = future.result(timeout=0)
            except _TaskFailure as failure:
                state.store(failure.completed)
                salvage = state.unfinished(chunk)
                # Budget the failure, but let the *next* attempt surface
                # it with the proper attribution if it keeps failing.
                state.charge([failure.index], "raise", fail_fast=False)
            except BaseException:
                salvage = state.unfinished(chunk)
            else:
                state.store(completed)
                state.busy_seconds += chunk_wall
        else:
            salvage = state.unfinished(chunk)
        if salvage:
            lost.append(salvage)
    return lost


def _drain_generation(
    pool: ProcessPoolExecutor,
    fn: Callable[[Any], Any],
    state: _MapState,
    chunks: list[tuple[int, ...]],
    task_timeout: float | None,
) -> None:
    """Run *chunks* (plus any retry waves) to completion on one pool.

    Returns normally when every submitted task finished or permanently
    failed fast; raises :class:`_PoolFault` when the pool must be
    abandoned (worker death or deadline stall), carrying the chunks that
    still need to run.
    """
    watching = obs.enabled()
    wave = list(chunks)
    while wave:
        submitted = [
            (
                chunk,
                pool.submit(
                    _run_chunk, fn, tuple((i, state.items[i]) for i in chunk)
                ),
            )
            for chunk in wave
        ]
        wave = []
        backoff = 0.0
        for position, (chunk, future) in enumerate(submitted):
            timeout = (
                None
                if task_timeout is None
                else task_timeout * len(chunk) + DEADLINE_GRACE_S
            )
            try:
                completed, chunk_wall = future.result(timeout=timeout)
            except _TaskFailure as failure:
                state.store(failure.completed)
                remainder = tuple(
                    i for i in state.unfinished(chunk) if i != failure.index
                )
                attempt = state.attempts.get(failure.index, 0) + 1
                if attempt > state.retries:
                    for _, pending in submitted:
                        pending.cancel()
                    raise failure.exception from ParallelError(
                        f"task {failure.index} ({failure.item_repr}) raised "
                        f"{type(failure.exception).__name__} in a worker "
                        f"process (attempt {attempt} of {state.retries + 1})"
                    )
                state.attempts[failure.index] = attempt
                if remainder:
                    wave.append(remainder)
                wave.append((failure.index,))
                backoff = max(backoff, backoff_delay(attempt))
                if watching:
                    obs.inc("executor.task_retries")
                    obs.event(
                        "executor.task_retry",
                        task=failure.index,
                        attempt=attempt,
                        error=type(failure.exception).__name__,
                        backoff_s=backoff_delay(attempt),
                    )
            except FuturesTimeoutError:
                stalled = state.unfinished(chunk)
                if watching:
                    obs.inc("executor.task_timeouts")
                    obs.event(
                        "executor.task_timeout",
                        tasks=list(stalled),
                        deadline_s=task_timeout,
                    )
                state.charge(stalled, "stall")
                lost = _harvest(state, submitted[position + 1 :])
                raise _PoolFault("stall", [stalled] + lost + wave)
            except BrokenProcessPool:
                died = state.unfinished(chunk)
                state.charge(died, "death")
                lost = _harvest(state, submitted[position + 1 :])
                raise _PoolFault("death", [died] + lost + wave)
            else:
                state.store(completed)
                state.busy_seconds += chunk_wall
                if watching:
                    obs.observe("executor.chunk_seconds", chunk_wall)
        if wave and backoff > 0:
            time.sleep(backoff)


def _parallel_map_pool(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    workers: int,
    initializer: Callable[..., None] | None,
    initargs: Sequence[Any],
    chunk_size: int,
    retries: int,
    task_timeout: float | None,
) -> list[Any]:
    """The real pool path: submit per-chunk, collect in order, retry and
    respawn within budget, attribute failures, and (when collection is
    on) observe pool behaviour."""
    watching = obs.enabled()
    if watching:
        obs.set_gauge("executor.pool.workers", workers)
        obs.inc("executor.tasks.dispatched", len(items), mode="parallel")
    context = multiprocessing.get_context("fork")
    state = _MapState(items, retries)
    respawn_budget = resolve_pool_respawns()
    respawns = 0
    pending = _chunked(list(range(len(items))), chunk_size)
    pool_start = time.perf_counter()
    with obs.span(
        "executor.parallel_map",
        tasks=len(items),
        workers=workers,
        chunk_size=chunk_size,
        retries=retries,
    ):
        while pending:
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_worker_bootstrap,
                initargs=(initializer, tuple(initargs)),
            )
            try:
                _drain_generation(pool, fn, state, pending, task_timeout)
            except _PoolFault as fault:
                if fault.kind == "stall":
                    _kill_pool_processes(pool)
                pool.shutdown(wait=False, cancel_futures=True)
                respawns += 1
                pending = fault.lost
                if respawns > respawn_budget:
                    _degrade_to_serial(state, fn, initializer, initargs, respawns)
                    break
                if watching:
                    obs.inc("executor.pool_respawns", kind=fault.kind)
                    obs.event(
                        "executor.pool_respawn",
                        kind=fault.kind,
                        respawn=respawns,
                        lost_tasks=sum(len(chunk) for chunk in fault.lost),
                    )
                continue
            except BaseException:
                # Fail-fast path (budget exhausted or unexpected error):
                # never leave a possibly-stuck worker holding the parent.
                _kill_pool_processes(pool)
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            pool.shutdown(wait=True)
            pending = []
    if watching:
        pool_wall = time.perf_counter() - pool_start
        if pool_wall > 0:
            obs.set_gauge(
                "executor.worker_utilization",
                min(1.0, state.busy_seconds / (pool_wall * workers)),
            )
    return state.results


def _degrade_to_serial(
    state: _MapState,
    fn: Callable[[Any], Any],
    initializer: Callable[..., None] | None,
    initargs: Sequence[Any],
    respawns: int,
) -> None:
    """Last resort when the pool keeps breaking: finish the remaining
    tasks in-process, in order, recording a structured reason.  The
    caller's initializer runs in-process first, exactly like the normal
    serial fallback."""
    remaining = state.remaining()
    if obs.enabled():
        obs.inc("executor.serial_fallback", reason="pool-irrecoverable")
        obs.event(
            "executor.serial_degrade",
            reason="pool-irrecoverable",
            respawns=respawns,
            remaining_tasks=len(remaining),
        )
    if initializer is not None:
        initializer(*initargs)
    for index in remaining:
        state.results[index] = fn(state.items[index])
        state.done[index] = True
    if remaining and obs.enabled():
        obs.inc("executor.tasks.completed", len(remaining), mode="serial")
