"""A deterministic process-pool executor for embarrassingly parallel loops.

:func:`parallel_map` is the single primitive the experiment, ensemble, and
evaluation layers build on.  Its contract:

* **Determinism** — results are collected in item order and every item is
  an explicit, self-contained description of its work (callers put the
  per-item seed *inside* the item, fanned out with
  :func:`repro.util.rng.spawn_seeds`), so the output is bitwise-identical
  whatever the worker count, including the serial fallback.
* **One-time state shipping** — *initializer*/*initargs* run once per
  worker process (not once per task), which is where callers ship the
  manifest, traces, and trained policies; tasks themselves stay tiny.
* **Transparent serial fallback** — with ``max_workers=1``, with fewer
  than two items, on platforms without ``fork``, or when already inside a
  worker process (no nested pools), the same function/items are executed
  in-process in order.
* **Attributed failures** — a task that raises inside a worker re-raises
  the *original* exception in the parent with a :class:`ParallelError`
  cause naming the failing task; a worker that dies outright (segfault,
  ``os._exit``) surfaces as a :class:`ParallelError` naming the tasks it
  was running, never a hang or a bare ``BrokenProcessPool``.

Worker-count resolution: an explicit ``max_workers`` argument wins,
otherwise the ``REPRO_MAX_WORKERS`` environment variable, otherwise 1
(serial).  Parallelism is therefore always opt-in and the default
behaviour matches the original serial code exactly.  The resolved count
is additionally capped at ``os.cpu_count()``: these are CPU-bound numpy
tasks, so oversubscribing cores only adds fork and scheduling overhead
(on a single-CPU machine every request degrades to the serial fallback,
which benchmarking showed to be faster there than any pool).

When metric collection is on (:mod:`repro.obs`), every call records task
dispatch/completion counters, the pool width, per-chunk worker walls, and
an end-of-pool worker-utilization gauge; serial fallbacks record which of
the conditions above triggered them.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Sequence

from repro import obs
from repro.errors import ParallelError

__all__ = ["parallel_map", "resolve_max_workers", "in_worker"]

#: Environment variable consulted when ``max_workers`` is not given.
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"

_IN_WORKER = False


def in_worker() -> bool:
    """Whether this process is a :func:`parallel_map` worker.

    Nested ``parallel_map`` calls inside a worker degrade to the serial
    fallback, so callers can parallelize at whatever layer they like
    without worrying about pool-in-pool explosions.
    """
    return _IN_WORKER


def resolve_max_workers(max_workers: int | None = None) -> int:
    """Resolve the effective worker count.

    Precedence: explicit argument, then the ``REPRO_MAX_WORKERS``
    environment variable, then 1 (serial).
    """
    if max_workers is None:
        env = os.environ.get(MAX_WORKERS_ENV, "").strip()
        if not env:
            return 1
        try:
            max_workers = int(env)
        except ValueError as exc:
            raise ParallelError(
                f"{MAX_WORKERS_ENV} must be a positive integer "
                f"(e.g. {MAX_WORKERS_ENV}=4), got {env!r}"
            ) from exc
        if max_workers < 1:
            raise ParallelError(
                f"{MAX_WORKERS_ENV} must be >= 1, got {max_workers}; "
                f"unset it (or use {MAX_WORKERS_ENV}=1) to run serially"
            )
    if max_workers < 1:
        raise ParallelError(f"max_workers must be >= 1, got {max_workers}")
    return max_workers


class _TaskFailure(Exception):
    """Picklable wrapper shipping a task's exception back with attribution.

    All fields ride in ``args`` so the default exception pickling used by
    the pool's result channel reconstructs the wrapper (and the original
    exception inside it) in the parent process.
    """

    def __init__(self, index: int, item_repr: str, exception: BaseException) -> None:
        super().__init__(index, item_repr, exception)
        self.index = index
        self.item_repr = item_repr
        self.exception = exception


def _worker_bootstrap(
    initializer: Callable[..., None] | None, initargs: Sequence[Any]
) -> None:
    """Per-worker setup: mark the process as a worker, then run the
    caller's initializer (which typically fills module-level state)."""
    global _IN_WORKER
    _IN_WORKER = True
    if initializer is not None:
        initializer(*initargs)


def _run_chunk(
    fn: Callable[[Any], Any], chunk: Sequence[Any], offset: int
) -> tuple[list[Any], float]:
    """Run one contiguous chunk of tasks inside a worker.

    Returns ``(values, wall_seconds)`` — the worker-side wall time is what
    the parent aggregates into the utilization gauge.  A failing task is
    wrapped in :class:`_TaskFailure` carrying its global index.
    """
    start = time.perf_counter()
    values: list[Any] = []
    for position, item in enumerate(chunk):
        try:
            values.append(fn(item))
        except BaseException as exc:
            raise _TaskFailure(offset + position, repr(item), exc) from exc
    return values, time.perf_counter() - start


def _serial_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    initializer: Callable[..., None] | None,
    initargs: Sequence[Any],
) -> list[Any]:
    if initializer is not None:
        initializer(*initargs)
    return [fn(item) for item in items]


def _serial_reason(workers: int, n_items: int) -> str:
    """Why this call is degrading to the serial fallback (metric label)."""
    if n_items < 2:
        return "few-items"
    if in_worker():
        return "nested-pool"
    if "fork" not in multiprocessing.get_all_start_methods():
        return "no-fork"
    if workers == 1 and (os.cpu_count() or 1) == 1:
        return "cpu-cap"
    return "serial-requested"


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    max_workers: int | None = None,
    initializer: Callable[..., None] | None = None,
    initargs: Sequence[Any] = (),
    chunk_size: int | None = None,
) -> list[Any]:
    """Map *fn* over *items*, optionally across a process pool.

    *fn* and *initializer* must be module-level functions (they are
    pickled by name); see :mod:`repro.parallel.worker` for the task
    functions the library ships.  Results come back in item order.
    ``chunk_size`` controls scheduling granularity (default: about four
    chunks per worker).

    The pool size never exceeds ``os.cpu_count()``: more workers than
    cores cannot speed up CPU-bound tasks, and on a one-CPU machine the
    serial fallback avoids pure fork/pickle overhead.

    A task exception re-raises in the parent with its original type; its
    ``__cause__`` is a :class:`ParallelError` naming the task.  A worker
    death raises :class:`ParallelError` naming the tasks the dead worker
    held.
    """
    items = list(items)
    if chunk_size is not None and chunk_size < 1:
        raise ParallelError(f"chunk_size must be >= 1, got {chunk_size}")
    workers = min(
        resolve_max_workers(max_workers),
        max(len(items), 1),
        os.cpu_count() or 1,
    )
    if (
        workers == 1
        or len(items) < 2
        or in_worker()
        or "fork" not in multiprocessing.get_all_start_methods()
    ):
        if obs.enabled():
            obs.inc("executor.serial_fallback", reason=_serial_reason(workers, len(items)))
            obs.inc("executor.tasks.dispatched", len(items), mode="serial")
        values = _serial_map(fn, items, initializer, initargs)
        if obs.enabled():
            obs.inc("executor.tasks.completed", len(values), mode="serial")
        return values
    if chunk_size is None:
        chunk_size = max(1, len(items) // (workers * 4))
    return _parallel_map_pool(fn, items, workers, initializer, initargs, chunk_size)


def _parallel_map_pool(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    workers: int,
    initializer: Callable[..., None] | None,
    initargs: Sequence[Any],
    chunk_size: int,
) -> list[Any]:
    """The real pool path: submit per-chunk, collect in order, attribute
    failures, and (when collection is on) observe pool behaviour."""
    watching = obs.enabled()
    if watching:
        obs.set_gauge("executor.pool.workers", workers)
        obs.inc("executor.tasks.dispatched", len(items), mode="parallel")
    context = multiprocessing.get_context("fork")
    pool_start = time.perf_counter()
    busy_seconds = 0.0
    results: list[Any] = [None] * len(items)
    with obs.span(
        "executor.parallel_map", tasks=len(items), workers=workers, chunk_size=chunk_size
    ):
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_worker_bootstrap,
            initargs=(initializer, tuple(initargs)),
        ) as pool:
            submitted = [
                (offset, pool.submit(_run_chunk, fn, items[offset : offset + chunk_size], offset))
                for offset in range(0, len(items), chunk_size)
            ]
            for offset, future in submitted:
                try:
                    values, chunk_wall = future.result()
                except _TaskFailure as failure:
                    for _, pending in submitted:
                        pending.cancel()
                    raise failure.exception from ParallelError(
                        f"task {failure.index} ({failure.item_repr}) raised "
                        f"{type(failure.exception).__name__} in a worker process"
                    )
                except BrokenProcessPool as exc:
                    for _, pending in submitted:
                        pending.cancel()
                    last = min(offset + chunk_size, len(items)) - 1
                    raise ParallelError(
                        f"a worker process died while running tasks "
                        f"{offset}..{last} (first item: {items[offset]!r}); "
                        "the pool cannot continue — rerun with "
                        "max_workers=1 to debug the failing task in-process"
                    ) from exc
                results[offset : offset + len(values)] = values
                busy_seconds += chunk_wall
                if watching:
                    obs.observe("executor.chunk_seconds", chunk_wall)
                    obs.inc("executor.tasks.completed", len(values), mode="parallel")
    if watching:
        pool_wall = time.perf_counter() - pool_start
        if pool_wall > 0:
            obs.set_gauge(
                "executor.worker_utilization",
                min(1.0, busy_seconds / (pool_wall * workers)),
            )
    return results
