"""Zero-copy shared-memory publication of worker context.

Sharded serving ships one heavyweight context — manifest, both policies,
the ensemble-backed signal — to every worker.  Plain ``initargs``
pickling copies the ensemble weights once per worker *and* materializes
a private copy in each worker's heap.  This module publishes the context
**once** into a POSIX shared-memory block and hands workers a tiny
:class:`PayloadHandle` (name + buffer layout); each worker maps the
block and reconstructs the context with every numpy array pointing
*into* the shared mapping — zero copies, one physical instance of the
weights regardless of worker count.

Mechanics: the payload is pickled with protocol 5, which surfaces every
large contiguous buffer (numpy arrays chief among them) as an
out-of-band :class:`pickle.PickleBuffer` instead of embedding it in the
pickle stream.  The block is laid out as ``[pickle bytes | buffer 0 |
buffer 1 | ...]`` with each buffer 64-byte aligned;
:func:`attach_payload` re-materializes the object graph by handing
``pickle.loads`` read-only memoryviews into the mapping.  Reconstructed
arrays are therefore *read-only* views — exactly right for serving,
where workers only ever run forwards.

The publishing process unlinks the block after the worker pool drains;
workers keep their mapping (and the arrays into it) alive for the life
of the pool.  Set ``REPRO_DISABLE_SHM`` (to any non-empty value) to fall
back to plain pickled ``initargs``; results are identical either way.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any

__all__ = [
    "PayloadHandle",
    "SharedPayload",
    "attach_payload",
    "publish_payload",
    "shm_enabled",
]

#: Alignment for out-of-band buffers inside the block; 64 bytes keeps
#: every reconstructed array cache-line aligned for the BLAS forwards.
_ALIGN = 64


def shm_enabled() -> bool:
    """Whether shared-memory context publication is active."""
    return not os.environ.get("REPRO_DISABLE_SHM")


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class _QuietSharedMemory(shared_memory.SharedMemory):
    """A mapping that tolerates still-exported buffers at teardown.

    A worker's reconstructed arrays keep memoryviews into the mapping
    until process exit; the interpreter tears objects down in arbitrary
    order, so ``close()`` can run while views are still alive and raises
    ``BufferError`` from ``mmap.close()``.  The process is exiting — the
    mapping is reclaimed by the OS regardless — so the error is pure
    noise and is swallowed.
    """

    def close(self) -> None:
        try:
            super().close()
        except BufferError:
            pass


@dataclass(frozen=True)
class PayloadHandle:
    """Everything a worker needs to attach a published payload.

    Pure picklable data: the shared block's *name*, the length of the
    pickle stream at its head, and the ``(offset, length)`` layout of
    the out-of-band buffers that follow.
    """

    name: str
    data_length: int
    buffers: tuple[tuple[int, int], ...]


class SharedPayload:
    """A published payload, owned by the publishing process.

    Hand :attr:`handle` to workers; call :meth:`unlink` once the worker
    pool has drained (attached workers keep their mappings alive — unlink
    only removes the name, freeing the memory when the last mapping
    closes).
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, handle: PayloadHandle
    ) -> None:
        self._shm = shm
        self.handle = handle
        #: Total bytes in the shared block.
        self.size = shm.size

    def unlink(self) -> None:
        """Close this process's mapping and remove the block's name."""
        try:
            self._shm.close()
        finally:
            self._shm.unlink()


def publish_payload(payload: Any) -> SharedPayload:
    """Publish *payload* into one shared-memory block.

    Pickles with protocol 5, diverting every picklable buffer
    out-of-band, and lays the block out as ``[pickle | aligned
    buffers...]``.  Returns a :class:`SharedPayload` whose
    :attr:`~SharedPayload.handle` reconstructs the payload zero-copy in
    any process on this machine.
    """
    raw_buffers: list[pickle.PickleBuffer] = []
    data = pickle.dumps(
        payload, protocol=5, buffer_callback=raw_buffers.append
    )
    views = [buffer.raw() for buffer in raw_buffers]
    layout: list[tuple[int, int]] = []
    offset = len(data)
    for view in views:
        offset = _aligned(offset)
        layout.append((offset, view.nbytes))
        offset += view.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    try:
        shm.buf[: len(data)] = data
        for (start, length), view in zip(layout, views):
            shm.buf[start : start + length] = view.cast("B")
    except Exception:
        shm.close()
        shm.unlink()
        raise
    finally:
        for view in views:
            view.release()
        for buffer in raw_buffers:
            buffer.release()
    handle = PayloadHandle(
        name=shm.name,
        data_length=len(data),
        buffers=tuple(layout),
    )
    return SharedPayload(shm, handle)


def attach_payload(handle: PayloadHandle) -> tuple[Any, shared_memory.SharedMemory]:
    """Reconstruct a published payload in this process, zero-copy.

    Returns ``(payload, mapping)``.  Every out-of-band buffer in the
    payload — numpy weight arrays included — is a **read-only** view
    into *mapping*; the caller must keep *mapping* referenced for as
    long as the payload is in use, and ``close()`` it only when done.
    """
    shm = _QuietSharedMemory(name=handle.name)
    view = memoryview(shm.buf).toreadonly()
    data = bytes(view[: handle.data_length])
    buffers = [
        view[start : start + length] for start, length in handle.buffers
    ]
    payload = pickle.loads(data, buffers=buffers)
    return payload, shm
