"""Deterministic fault injection for the experiment pipeline.

The resilience guarantees of :mod:`repro.parallel` — retries, pool
respawn, task deadlines, checkpoint resume — are only trustworthy if they
are *tested against real faults*.  This module provides a tiny harness
that injects faults at named sites on a fully deterministic schedule, so
a test (or the CI ``fault-smoke`` job) can kill a worker at exactly the
same point on every run and assert the pipeline recovers identically.

Fault model
-----------

A :class:`ChaosEvent` names a *site*, an *index*, and an *action*:

* site ``"task"`` — fired by the executor inside a worker immediately
  before running the task with that global index,
* site ``"epoch"`` — fired by both training engines at the end of the
  epoch with that index (after any checkpoint write, so an interruption
  here models a kill at an epoch boundary),
* action ``"raise"`` — raise :class:`~repro.errors.ChaosError`,
* action ``"kill"``  — ``os._exit`` the process (simulating a segfault
  or an OOM kill; never run this action in a process you cannot lose),
* action ``"delay"`` — sleep for ``delay_s`` seconds (simulating a stall
  that must trip the task deadline).

Schedules are either explicit (a list of events) or *seeded*:
:func:`seeded_events` derives the fire indices from a
:class:`numpy.random.Generator` so a whole fault scenario is a pure
function of one integer seed.

Activation
----------

Like :mod:`repro.obs`, the harness is **off by default**: every
:func:`maybe_fire` call is one ``is None`` check until an injector is
installed via :func:`install` / :func:`injected`, or through the
``REPRO_CHAOS`` environment variable (which forked workers and CLI
subprocesses inherit)::

    REPRO_CHAOS="kill@task:3"                # kill the worker running task 3
    REPRO_CHAOS="raise@epoch:1,delay@task:2:0.5"

Each event fires at most ``times`` times (default once) per process
tree; pass a ``state_dir`` (or ``REPRO_CHAOS_STATE``) to persist fire
counts on disk so the budget also spans pool respawns and process
restarts — that is what lets a "kill once, then succeed" retry scenario
be expressed deterministically.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.errors import ChaosError, ConfigError
from repro.util.rng import rng_from_seed

__all__ = [
    "CHAOS_ENV",
    "CHAOS_STATE_ENV",
    "ACTIONS",
    "ChaosEvent",
    "ChaosInjector",
    "seeded_events",
    "parse_chaos_spec",
    "install",
    "uninstall",
    "active",
    "maybe_fire",
    "injected",
]

#: Environment variable holding a chaos spec (see :func:`parse_chaos_spec`).
CHAOS_ENV = "REPRO_CHAOS"
#: Environment variable naming a directory for cross-process fire counts.
CHAOS_STATE_ENV = "REPRO_CHAOS_STATE"

#: The supported fault actions.
ACTIONS = ("raise", "kill", "delay")

#: Exit code used by the ``kill`` action (distinctive in CI logs).
KILL_EXIT_CODE = 43


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault: *action* at the *index*-th hit of *site*."""

    site: str
    index: int
    action: str
    delay_s: float = 0.1
    times: int = 1

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ConfigError(
                f"unknown chaos action {self.action!r}; expected one of {ACTIONS}"
            )
        if self.index < 0:
            raise ConfigError(f"chaos index must be >= 0, got {self.index}")
        if self.times < 1:
            raise ConfigError(f"chaos times must be >= 1, got {self.times}")
        if self.action == "delay" and self.delay_s <= 0:
            raise ConfigError(
                f"chaos delay_s must be positive, got {self.delay_s}"
            )


class ChaosInjector:
    """Fires a fixed schedule of :class:`ChaosEvent` at hook sites.

    Fire counts live in memory; with *state_dir* they are additionally
    persisted as marker files so a fork-inherited copy of the injector
    (a pool worker, a respawned pool, a resumed CLI run) still honours
    each event's ``times`` budget.
    """

    def __init__(
        self,
        events: Iterable[ChaosEvent],
        state_dir: Path | str | None = None,
    ) -> None:
        self._events: dict[tuple[str, int], ChaosEvent] = {}
        for event in events:
            key = (event.site, event.index)
            if key in self._events:
                raise ConfigError(
                    f"duplicate chaos event for site {event.site!r} "
                    f"index {event.index}"
                )
            self._events[key] = event
        self._fired: dict[tuple[str, int], int] = {}
        self.state_dir = Path(state_dir) if state_dir is not None else None

    @property
    def events(self) -> tuple[ChaosEvent, ...]:
        """The schedule, in (site, index) order."""
        return tuple(self._events[key] for key in sorted(self._events))

    def _fire_count(self, key: tuple[str, int]) -> int:
        if self.state_dir is not None:
            count = 0
            while (self.state_dir / self._marker(key, count)).exists():
                count += 1
            return count
        return self._fired.get(key, 0)

    def _record_fire(self, key: tuple[str, int], count: int) -> None:
        self._fired[key] = count + 1
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            (self.state_dir / self._marker(key, count)).touch()

    @staticmethod
    def _marker(key: tuple[str, int], count: int) -> str:
        site, index = key
        return f"fired-{site}-{index}-{count}"

    def maybe_fire(self, site: str, index: int) -> None:
        """Fire the event scheduled for ``(site, index)``, if any remains.

        ``raise`` raises :class:`ChaosError`; ``kill`` exits the process
        immediately with :data:`KILL_EXIT_CODE`; ``delay`` sleeps.
        """
        key = (site, index)
        event = self._events.get(key)
        if event is None:
            return
        count = self._fire_count(key)
        if count >= event.times:
            return
        self._record_fire(key, count)
        if event.action == "delay":
            time.sleep(event.delay_s)
            return
        if event.action == "kill":
            os._exit(KILL_EXIT_CODE)
        raise ChaosError(
            f"injected failure at {site}:{index} "
            f"(fire {count + 1}/{event.times})"
        )


def seeded_events(
    seed: int,
    site: str,
    population: int,
    count: int,
    action: str = "raise",
    delay_s: float = 0.1,
    times: int = 1,
) -> list[ChaosEvent]:
    """A deterministic schedule: *count* distinct fire indices drawn
    without replacement from ``range(population)`` by a generator seeded
    with *seed*.  The same arguments always produce the same schedule, in
    any process, which is what makes chaos runs reproducible."""
    if not 0 <= count <= population:
        raise ConfigError(
            f"need 0 <= count <= population, got count={count} "
            f"population={population}"
        )
    rng = rng_from_seed(seed)
    indices = sorted(rng.choice(population, size=count, replace=False).tolist())
    return [
        ChaosEvent(site=site, index=int(i), action=action, delay_s=delay_s, times=times)
        for i in indices
    ]


def parse_chaos_spec(spec: str) -> list[ChaosEvent]:
    """Parse a ``REPRO_CHAOS`` spec string into events.

    Grammar: comma-separated ``action@site:index`` terms, with an optional
    trailing ``:seconds`` for ``delay`` — e.g.
    ``"kill@task:3,raise@epoch:1,delay@task:2:0.5"``.
    """
    events = []
    for term in spec.split(","):
        term = term.strip()
        if not term:
            continue
        try:
            action, _, location = term.partition("@")
            parts = location.split(":")
            site, index = parts[0], int(parts[1])
            delay_s = float(parts[2]) if len(parts) > 2 else 0.1
        except (ValueError, IndexError) as exc:
            raise ConfigError(
                f"malformed chaos term {term!r}; expected "
                "action@site:index[:delay_seconds]"
            ) from exc
        events.append(
            ChaosEvent(site=site, index=index, action=action, delay_s=delay_s)
        )
    if not events:
        raise ConfigError(f"chaos spec {spec!r} contains no events")
    return events


_INJECTOR: ChaosInjector | None = None


def install(injector: ChaosInjector) -> None:
    """Install *injector* as the process-wide chaos schedule."""
    global _INJECTOR
    _INJECTOR = injector


def uninstall() -> None:
    """Remove any installed injector (hook sites become no-ops again)."""
    global _INJECTOR
    _INJECTOR = None


def active() -> bool:
    """Whether a chaos schedule is currently installed."""
    return _INJECTOR is not None


def maybe_fire(site: str, index: int) -> None:
    """Hook-site facade: fire the scheduled fault for ``(site, index)``,
    or do nothing when no injector is installed (the common case — one
    ``is None`` check)."""
    if _INJECTOR is not None:
        _INJECTOR.maybe_fire(site, index)


@contextmanager
def injected(
    events: Sequence[ChaosEvent],
    state_dir: Path | str | None = None,
) -> Iterator[ChaosInjector]:
    """Install a schedule within a ``with`` block (test convenience)."""
    injector = ChaosInjector(events, state_dir=state_dir)
    previous = _INJECTOR
    install(injector)
    try:
        yield injector
    finally:
        install(previous) if previous is not None else uninstall()


def _bootstrap_from_env() -> None:
    """Install a schedule from ``REPRO_CHAOS`` at import time, so CLI
    subprocesses and forked workers participate without code changes."""
    spec = os.environ.get(CHAOS_ENV, "").strip()
    if not spec:
        return
    state_dir = os.environ.get(CHAOS_STATE_ENV, "").strip() or None
    install(ChaosInjector(parse_chaos_spec(spec), state_dir=state_dir))


_bootstrap_from_env()
