"""Layers with explicit forward/backward passes.

Each layer caches whatever its backward pass needs during ``forward`` and
accumulates parameter gradients into ``.grads`` during ``backward``.  Calling
``zero_grads`` between optimizer steps resets the accumulators; gradients from
multiple backward passes otherwise sum, which is exactly what the A2C trainer
wants when it combines policy and entropy losses.

Shapes are batch-first: :class:`Dense` takes ``(batch, features)``,
:class:`Conv1D` takes ``(batch, channels, length)``.

:class:`StackedDense` and :class:`StackedConv1D` are the member-stacked
variants behind the lockstep ensemble trainer: they hold the parameters of
``M`` structurally identical layers as ``(members, ...)`` arrays and run
one batched pass over ``(members, batch, ...)`` inputs.  Every operation
is arranged so member *m*'s slice goes through exactly the arithmetic of
its own layer — stacked ``matmul`` dispatches one GEMM per member slice
and the convolution einsums keep their contraction order — so forwards,
backwards, and accumulated gradients are **bitwise identical** to looping
over the member layers (asserted by the regression tests).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.nn.initializers import glorot_uniform, zeros

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Conv1D",
    "Flatten",
    "StackedDense",
    "StackedConv1D",
]


class Layer:
    """Base class: a differentiable function with (possibly zero) parameters."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output, caching what backward needs."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Given d(loss)/d(output), accumulate parameter gradients and
        return d(loss)/d(input)."""
        raise NotImplementedError

    @property
    def params(self) -> list[np.ndarray]:
        """Trainable parameter arrays (possibly empty)."""
        return []

    @property
    def grads(self) -> list[np.ndarray]:
        """Gradient accumulators aligned with :attr:`params`."""
        return []

    def zero_grads(self) -> None:
        """Reset gradient accumulators to zero."""
        for grad in self.grads:
            grad[...] = 0.0


class Dense(Layer):
    """Affine layer ``y = x @ W + b`` with ``W`` of shape ``(in, out)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        initializer=glorot_uniform,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ModelError(
                f"Dense dimensions must be positive, got ({in_features}, {out_features})"
            )
        self.weight = initializer((in_features, out_features), rng)
        self.bias = zeros((out_features,), rng)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.weight.shape[0]:
            raise ModelError(
                f"Dense expected (batch, {self.weight.shape[0]}), got {x.shape}"
            )
        self._x = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ModelError("backward called before forward")
        self.grad_weight += self._x.T @ grad_out
        self.grad_bias += grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    @property
    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    @property
    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class ReLU(Layer):
    """Elementwise rectifier."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ModelError("backward called before forward")
        return grad_out * self._mask


class LeakyReLU(Layer):
    """Leaky rectifier; keeps a small gradient on the negative side."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        if negative_slope < 0:
            raise ModelError(f"negative_slope must be >= 0, got {negative_slope}")
        self.negative_slope = negative_slope
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ModelError("backward called before forward")
        return np.where(self._mask, grad_out, self.negative_slope * grad_out)


class Tanh(Layer):
    """Elementwise hyperbolic tangent."""

    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise ModelError("backward called before forward")
        return grad_out * (1.0 - self._y**2)


class Conv1D(Layer):
    """Valid 1-D convolution over ``(batch, channels, length)`` inputs.

    Pensieve applies 1-D convolutions over its throughput / download-time /
    next-chunk-size history vectors; this is the same operation with stride 1
    and no padding, so the output length is ``length - kernel_size + 1``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        initializer=glorot_uniform,
    ) -> None:
        if min(in_channels, out_channels, kernel_size) <= 0:
            raise ModelError("Conv1D dimensions must be positive")
        self.kernel_size = kernel_size
        self.weight = initializer((out_channels, in_channels, kernel_size), rng)
        self.bias = zeros((out_channels,), rng)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 3 or x.shape[1] != self.weight.shape[1]:
            raise ModelError(
                f"Conv1D expected (batch, {self.weight.shape[1]}, length), got {x.shape}"
            )
        if x.shape[2] < self.kernel_size:
            raise ModelError(
                f"input length {x.shape[2]} shorter than kernel {self.kernel_size}"
            )
        self._x = x
        out_length = x.shape[2] - self.kernel_size + 1
        # (batch, out_channels, out_length) via one einsum per kernel offset.
        out = np.zeros((x.shape[0], self.weight.shape[0], out_length))
        for offset in range(self.kernel_size):
            segment = x[:, :, offset : offset + out_length]
            out += np.einsum("bcl,oc->bol", segment, self.weight[:, :, offset])
        return out + self.bias[None, :, None]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ModelError("backward called before forward")
        x = self._x
        out_length = grad_out.shape[2]
        grad_x = np.zeros_like(x)
        for offset in range(self.kernel_size):
            segment = x[:, :, offset : offset + out_length]
            self.grad_weight[:, :, offset] += np.einsum(
                "bol,bcl->oc", grad_out, segment
            )
            grad_x[:, :, offset : offset + out_length] += np.einsum(
                "bol,oc->bcl", grad_out, self.weight[:, :, offset]
            )
        self.grad_bias += grad_out.sum(axis=(0, 2))
        return grad_x

    @property
    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    @property
    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise ModelError("backward called before forward")
        return grad_out.reshape(self._shape)


class StackedDense(Layer):
    """``M`` member :class:`Dense` layers trained as one batched layer.

    Holds weights ``(members, in, out)`` and biases ``(members, out)``;
    ``forward`` maps ``(members, batch, in)`` to ``(members, batch, out)``
    with a single stacked matmul, and ``backward`` accumulates per-member
    gradients with two more.  Member *m*'s slice performs exactly the
    floats of its own :class:`Dense` layer, so training through this class
    reproduces the member-by-member loop bit for bit.
    """

    def __init__(self, weight: np.ndarray, bias: np.ndarray) -> None:
        weight = np.asarray(weight, dtype=float)
        bias = np.asarray(bias, dtype=float)
        if weight.ndim != 3:
            raise ModelError(f"stacked weight must be (members, in, out), got {weight.shape}")
        if bias.shape != (weight.shape[0], weight.shape[2]):
            raise ModelError(
                f"stacked bias {bias.shape} does not match weight {weight.shape}"
            )
        self.weight = weight
        self.bias = bias
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._x: np.ndarray | None = None

    @classmethod
    def from_layers(cls, layers: list[Dense]) -> "StackedDense":
        """Stack the (copied) parameters of identically shaped members."""
        if not layers:
            raise ModelError("need at least one Dense layer to stack")
        shapes = {layer.weight.shape for layer in layers}
        if len(shapes) != 1:
            raise ModelError(f"cannot stack Dense layers of shapes {sorted(shapes)}")
        return cls(
            np.stack([layer.weight for layer in layers]),
            np.stack([layer.bias for layer in layers]),
        )

    def write_back(self, layers: list[Dense]) -> None:
        """Copy the trained stacked parameters into the member layers."""
        if len(layers) != self.weight.shape[0]:
            raise ModelError(
                f"{len(layers)} layers for {self.weight.shape[0]} stacked members"
            )
        for index, layer in enumerate(layers):
            layer.weight[...] = self.weight[index]
            layer.bias[...] = self.bias[index]

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[0] != self.weight.shape[0] or x.shape[2] != self.weight.shape[1]:
            raise ModelError(
                f"StackedDense expected ({self.weight.shape[0]}, batch, "
                f"{self.weight.shape[1]}), got {x.shape}"
            )
        self._x = x
        return np.matmul(x, self.weight) + self.bias[:, None, :]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ModelError("backward called before forward")
        self.grad_weight += np.matmul(self._x.transpose(0, 2, 1), grad_out)
        self.grad_bias += grad_out.sum(axis=1)
        return np.matmul(grad_out, self.weight.transpose(0, 2, 1))

    @property
    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    @property
    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class StackedConv1D(Layer):
    """``M`` member :class:`Conv1D` layers trained as one batched layer.

    Weights are ``(members, out_channels, in_channels, kernel)``; inputs
    ``(members, batch, channels, length)``.  Forward and backward run the
    same one-einsum-per-kernel-offset loops as :class:`Conv1D` with a
    leading member axis, preserving the per-member contraction order so
    the results are bitwise identical to the member loop.  Pass
    ``input_grad=False`` to ``backward`` to skip the input-gradient einsum
    when the layer input is data (parameter gradients are unaffected).
    """

    def __init__(self, weight: np.ndarray, bias: np.ndarray) -> None:
        weight = np.asarray(weight, dtype=float)
        bias = np.asarray(bias, dtype=float)
        if weight.ndim != 4:
            raise ModelError(
                f"stacked weight must be (members, out, in, kernel), got {weight.shape}"
            )
        if bias.shape != weight.shape[:2]:
            raise ModelError(
                f"stacked bias {bias.shape} does not match weight {weight.shape}"
            )
        self.kernel_size = weight.shape[3]
        self.weight = weight
        self.bias = bias
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._x: np.ndarray | None = None

    @classmethod
    def from_layers(cls, layers: list[Conv1D]) -> "StackedConv1D":
        """Stack the (copied) parameters of identically shaped members."""
        if not layers:
            raise ModelError("need at least one Conv1D layer to stack")
        shapes = {layer.weight.shape for layer in layers}
        if len(shapes) != 1:
            raise ModelError(f"cannot stack Conv1D layers of shapes {sorted(shapes)}")
        return cls(
            np.stack([layer.weight for layer in layers]),
            np.stack([layer.bias for layer in layers]),
        )

    def write_back(self, layers: list[Conv1D]) -> None:
        """Copy the trained stacked parameters into the member layers."""
        if len(layers) != self.weight.shape[0]:
            raise ModelError(
                f"{len(layers)} layers for {self.weight.shape[0]} stacked members"
            )
        for index, layer in enumerate(layers):
            layer.weight[...] = self.weight[index]
            layer.bias[...] = self.bias[index]

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[0] != self.weight.shape[0] or x.shape[2] != self.weight.shape[2]:
            raise ModelError(
                f"StackedConv1D expected ({self.weight.shape[0]}, batch, "
                f"{self.weight.shape[2]}, length), got {x.shape}"
            )
        if x.shape[3] < self.kernel_size:
            raise ModelError(
                f"input length {x.shape[3]} shorter than kernel {self.kernel_size}"
            )
        self._x = x
        out_length = x.shape[3] - self.kernel_size + 1
        out = np.zeros((x.shape[0], x.shape[1], self.weight.shape[1], out_length))
        for offset in range(self.kernel_size):
            segment = x[:, :, :, offset : offset + out_length]
            out += np.einsum("mbcl,moc->mbol", segment, self.weight[:, :, :, offset])
        return out + self.bias[:, None, :, None]

    def backward(self, grad_out: np.ndarray, input_grad: bool = True) -> np.ndarray | None:
        if self._x is None:
            raise ModelError("backward called before forward")
        x = self._x
        out_length = grad_out.shape[3]
        grad_x = np.zeros_like(x) if input_grad else None
        for offset in range(self.kernel_size):
            segment = x[:, :, :, offset : offset + out_length]
            self.grad_weight[:, :, :, offset] += np.einsum(
                "mbol,mbcl->moc", grad_out, segment
            )
            if grad_x is not None:
                grad_x[:, :, :, offset : offset + out_length] += np.einsum(
                    "mbol,moc->mbcl", grad_out, self.weight[:, :, :, offset]
                )
        self.grad_bias += grad_out.sum(axis=(1, 3))
        return grad_x

    @property
    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    @property
    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]
