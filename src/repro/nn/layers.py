"""Layers with explicit forward/backward passes.

Each layer caches whatever its backward pass needs during ``forward`` and
accumulates parameter gradients into ``.grads`` during ``backward``.  Calling
``zero_grads`` between optimizer steps resets the accumulators; gradients from
multiple backward passes otherwise sum, which is exactly what the A2C trainer
wants when it combines policy and entropy losses.

Shapes are batch-first: :class:`Dense` takes ``(batch, features)``,
:class:`Conv1D` takes ``(batch, channels, length)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.nn.initializers import glorot_uniform, zeros

__all__ = ["Layer", "Dense", "ReLU", "LeakyReLU", "Tanh", "Conv1D", "Flatten"]


class Layer:
    """Base class: a differentiable function with (possibly zero) parameters."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output, caching what backward needs."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Given d(loss)/d(output), accumulate parameter gradients and
        return d(loss)/d(input)."""
        raise NotImplementedError

    @property
    def params(self) -> list[np.ndarray]:
        """Trainable parameter arrays (possibly empty)."""
        return []

    @property
    def grads(self) -> list[np.ndarray]:
        """Gradient accumulators aligned with :attr:`params`."""
        return []

    def zero_grads(self) -> None:
        """Reset gradient accumulators to zero."""
        for grad in self.grads:
            grad[...] = 0.0


class Dense(Layer):
    """Affine layer ``y = x @ W + b`` with ``W`` of shape ``(in, out)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        initializer=glorot_uniform,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ModelError(
                f"Dense dimensions must be positive, got ({in_features}, {out_features})"
            )
        self.weight = initializer((in_features, out_features), rng)
        self.bias = zeros((out_features,), rng)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.weight.shape[0]:
            raise ModelError(
                f"Dense expected (batch, {self.weight.shape[0]}), got {x.shape}"
            )
        self._x = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ModelError("backward called before forward")
        self.grad_weight += self._x.T @ grad_out
        self.grad_bias += grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    @property
    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    @property
    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class ReLU(Layer):
    """Elementwise rectifier."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ModelError("backward called before forward")
        return grad_out * self._mask


class LeakyReLU(Layer):
    """Leaky rectifier; keeps a small gradient on the negative side."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        if negative_slope < 0:
            raise ModelError(f"negative_slope must be >= 0, got {negative_slope}")
        self.negative_slope = negative_slope
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ModelError("backward called before forward")
        return np.where(self._mask, grad_out, self.negative_slope * grad_out)


class Tanh(Layer):
    """Elementwise hyperbolic tangent."""

    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise ModelError("backward called before forward")
        return grad_out * (1.0 - self._y**2)


class Conv1D(Layer):
    """Valid 1-D convolution over ``(batch, channels, length)`` inputs.

    Pensieve applies 1-D convolutions over its throughput / download-time /
    next-chunk-size history vectors; this is the same operation with stride 1
    and no padding, so the output length is ``length - kernel_size + 1``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        initializer=glorot_uniform,
    ) -> None:
        if min(in_channels, out_channels, kernel_size) <= 0:
            raise ModelError("Conv1D dimensions must be positive")
        self.kernel_size = kernel_size
        self.weight = initializer((out_channels, in_channels, kernel_size), rng)
        self.bias = zeros((out_channels,), rng)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 3 or x.shape[1] != self.weight.shape[1]:
            raise ModelError(
                f"Conv1D expected (batch, {self.weight.shape[1]}, length), got {x.shape}"
            )
        if x.shape[2] < self.kernel_size:
            raise ModelError(
                f"input length {x.shape[2]} shorter than kernel {self.kernel_size}"
            )
        self._x = x
        out_length = x.shape[2] - self.kernel_size + 1
        # (batch, out_channels, out_length) via one einsum per kernel offset.
        out = np.zeros((x.shape[0], self.weight.shape[0], out_length))
        for offset in range(self.kernel_size):
            segment = x[:, :, offset : offset + out_length]
            out += np.einsum("bcl,oc->bol", segment, self.weight[:, :, offset])
        return out + self.bias[None, :, None]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ModelError("backward called before forward")
        x = self._x
        out_length = grad_out.shape[2]
        grad_x = np.zeros_like(x)
        for offset in range(self.kernel_size):
            segment = x[:, :, offset : offset + out_length]
            self.grad_weight[:, :, offset] += np.einsum(
                "bol,bcl->oc", grad_out, segment
            )
            grad_x[:, :, offset : offset + out_length] += np.einsum(
                "bol,oc->bcl", grad_out, self.weight[:, :, offset]
            )
        self.grad_bias += grad_out.sum(axis=(0, 2))
        return grad_x

    @property
    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    @property
    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise ModelError("backward called before forward")
        return grad_out.reshape(self._shape)
