"""Losses and probability helpers.

Includes the numerically stable softmax family used by the actor network,
the KL divergence that defines the paper's ``U_pi`` uncertainty measure, and
the entropy bonus used by the A2C trainer.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "log_softmax",
    "softmax_cross_entropy",
    "mean_squared_error",
    "entropy",
    "kl_divergence",
]

_EPS = 1e-12


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along *axis*."""
    logits = np.asarray(logits, dtype=float)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along *axis*."""
    logits = np.asarray(logits, dtype=float)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def softmax_cross_entropy(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy between ``softmax(logits)`` and *targets*.

    *targets* may be integer class labels of shape ``(batch,)`` or soft
    target distributions of shape ``(batch, classes)``.  Returns the scalar
    loss and its gradient with respect to *logits* (already averaged over
    the batch), which is the standard ``softmax - target`` form.
    """
    logits = np.asarray(logits, dtype=float)
    batch = logits.shape[0]
    probs = softmax(logits)
    targets = np.asarray(targets)
    if targets.ndim == 1:
        one_hot = np.zeros_like(probs)
        one_hot[np.arange(batch), targets.astype(int)] = 1.0
        targets = one_hot
    loss = float(-(targets * log_softmax(logits)).sum() / batch)
    grad = (probs - targets) / batch
    return loss, grad


def mean_squared_error(
    predictions: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean squared error and its gradient with respect to *predictions*."""
    predictions = np.asarray(predictions, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if predictions.shape != targets.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
        )
    diff = predictions - targets
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return loss, grad


def entropy(probs: np.ndarray, axis: int = -1) -> np.ndarray:
    """Shannon entropy (nats) of probability vectors along *axis*."""
    probs = np.asarray(probs, dtype=float)
    return -(probs * np.log(probs + _EPS)).sum(axis=axis)


def kl_divergence(p: np.ndarray, q: np.ndarray, axis: int = -1) -> np.ndarray:
    """Kullback-Leibler divergence ``KL(p || q)`` (nats) along *axis*.

    This is the similarity measure the paper uses between ensemble members'
    action distributions and their average.  Both arguments must be valid
    probability vectors; a small epsilon guards against zeros in *q*.
    """
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    ratio = np.log((p + _EPS) / (q + _EPS))
    return (p * ratio).sum(axis=axis)
