"""A small, from-scratch neural-network library on numpy.

The original Pensieve system was written against TensorFlow; no deep-learning
framework is available in this environment, so this package implements the
pieces Pensieve's actor-critic networks need:

* layers with explicit forward/backward passes (:mod:`repro.nn.layers`),
* parameter initializers (:mod:`repro.nn.initializers`),
* losses and probability helpers (:mod:`repro.nn.losses`),
* first-order optimizers (:mod:`repro.nn.optim`),
* a :class:`~repro.nn.network.Sequential` container with save/load
  (:mod:`repro.nn.network`), and
* numerical gradient checking used by the test suite
  (:mod:`repro.nn.gradcheck`).

All arrays are ``float64`` and batch-first.
"""

from repro.nn.gradcheck import numerical_gradient, relative_error
from repro.nn.initializers import glorot_uniform, he_normal, normal, zeros
from repro.nn.layers import Conv1D, Dense, Flatten, Layer, LeakyReLU, ReLU, Tanh
from repro.nn.losses import (
    entropy,
    kl_divergence,
    log_softmax,
    mean_squared_error,
    softmax,
    softmax_cross_entropy,
)
from repro.nn.network import Sequential, build_mlp
from repro.nn.optim import SGD, Adam, Optimizer, RMSProp

__all__ = [
    "Adam",
    "Conv1D",
    "Dense",
    "Flatten",
    "Layer",
    "LeakyReLU",
    "Optimizer",
    "ReLU",
    "RMSProp",
    "SGD",
    "Sequential",
    "Tanh",
    "build_mlp",
    "entropy",
    "glorot_uniform",
    "he_normal",
    "kl_divergence",
    "log_softmax",
    "mean_squared_error",
    "normal",
    "numerical_gradient",
    "relative_error",
    "softmax",
    "softmax_cross_entropy",
    "zeros",
]
