"""Network containers and builders.

:class:`Sequential` chains layers and exposes flat parameter/gradient lists
for the optimizers; :func:`build_mlp` is the standard way value functions and
policy heads are constructed throughout the library.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ModelError
from repro.nn.layers import Dense, Layer, ReLU, Tanh
from repro.util.serialization import load_arrays, save_arrays

__all__ = ["Sequential", "build_mlp"]

_ACTIVATIONS = {"relu": ReLU, "tanh": Tanh}


class Sequential(Layer):
    """A chain of layers applied in order."""

    def __init__(self, layers: list[Layer]) -> None:
        if not layers:
            raise ModelError("Sequential requires at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    @property
    def params(self) -> list[np.ndarray]:
        return [param for layer in self.layers for param in layer.params]

    @property
    def grads(self) -> list[np.ndarray]:
        return [grad for layer in self.layers for grad in layer.grads]

    def copy_params_from(self, other: "Sequential") -> None:
        """Copy parameter values from a structurally identical network."""
        source = other.params
        target = self.params
        if len(source) != len(target):
            raise ModelError("parameter count mismatch between networks")
        for dst, src in zip(target, source):
            if dst.shape != src.shape:
                raise ModelError(
                    f"parameter shape mismatch: {dst.shape} vs {src.shape}"
                )
            dst[...] = src

    def save(self, path: Path | str) -> None:
        """Persist all parameters to an ``.npz`` file."""
        save_arrays(path, {f"param_{i}": p for i, p in enumerate(self.params)})

    def load(self, path: Path | str) -> None:
        """Load parameters saved by :meth:`save` into this network."""
        arrays = load_arrays(path)
        params = self.params
        if len(arrays) != len(params):
            raise ModelError(
                f"checkpoint has {len(arrays)} arrays, network has {len(params)}"
            )
        for index, param in enumerate(params):
            stored = arrays[f"param_{index}"]
            if stored.shape != param.shape:
                raise ModelError(
                    f"parameter {index} shape mismatch: "
                    f"checkpoint {stored.shape} vs network {param.shape}"
                )
            param[...] = stored


def build_mlp(
    in_features: int,
    hidden_sizes: list[int],
    out_features: int,
    rng: np.random.Generator,
    activation: str = "relu",
) -> Sequential:
    """Build a multilayer perceptron with the given hidden widths.

    The output layer is linear; callers apply softmax (policies) or use the
    raw scalar (value functions) themselves.
    """
    if activation not in _ACTIVATIONS:
        raise ModelError(
            f"unknown activation {activation!r}; expected one of {sorted(_ACTIVATIONS)}"
        )
    layers: list[Layer] = []
    width = in_features
    for hidden in hidden_sizes:
        layers.append(Dense(width, hidden, rng))
        layers.append(_ACTIVATIONS[activation]())
        width = hidden
    layers.append(Dense(width, out_features, rng))
    return Sequential(layers)
