"""Numerical gradient checking.

Used by the test suite to verify every layer's analytic backward pass
against central finite differences.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["numerical_gradient", "relative_error"]


def numerical_gradient(
    func: Callable[[], float],
    array: np.ndarray,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of the scalar ``func()`` w.r.t. *array*.

    *func* must recompute the scalar from current array contents each call;
    *array* is perturbed in place and restored.
    """
    grad = np.zeros_like(array)
    flat = array.ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = func()
        flat[index] = original - epsilon
        minus = func()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2.0 * epsilon)
    return grad


def relative_error(a: np.ndarray, b: np.ndarray) -> float:
    """Max elementwise relative error, with an absolute floor for tiny values."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    denom = np.maximum(np.abs(a) + np.abs(b), 1e-8)
    return float(np.max(np.abs(a - b) / denom))
