"""Numerical gradient checking.

Used by the test suite to verify every layer's analytic backward pass
against central finite differences.

Cost model: :func:`numerical_gradient` perturbs one flat index of the
array per central difference, so a full check costs ``2 * array.size``
evaluations of *func* — O(params x forward) for a network loss.  That is
inherent to finite differences (each parameter needs its own perturbed
forward; the evaluations cannot be batched into one pass without changing
what is being measured), so for large arrays pass ``sample`` to check a
random subset of indices instead of every one.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["numerical_gradient", "relative_error"]


def numerical_gradient(
    func: Callable[[], float],
    array: np.ndarray,
    epsilon: float = 1e-6,
    sample: int | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Central-difference gradient of the scalar ``func()`` w.r.t. *array*.

    *func* must recompute the scalar from current array contents each call;
    *array* is perturbed in place and restored.  Costs two ``func()``
    evaluations per checked element.  With *sample* set, only that many
    randomly chosen flat indices are checked (requires *rng*); unchecked
    entries of the returned gradient are zero, so compare analytic
    gradients only where the returned array is nonzero — or mask both with
    ``numerical != 0``.
    """
    grad = np.zeros_like(array)
    flat = array.ravel()
    grad_flat = grad.ravel()
    if sample is None:
        indices = np.arange(flat.size)
    else:
        if sample < 1:
            raise ValueError(f"sample must be >= 1, got {sample}")
        if rng is None:
            raise ValueError("sampled gradient checks need an rng")
        indices = rng.choice(flat.size, size=min(sample, flat.size), replace=False)
    for index in indices:
        original = flat[index]
        flat[index] = original + epsilon
        plus = func()
        flat[index] = original - epsilon
        minus = func()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2.0 * epsilon)
    return grad


def relative_error(a: np.ndarray, b: np.ndarray) -> float:
    """Max elementwise relative error, with an absolute floor for tiny values."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    denom = np.maximum(np.abs(a) + np.abs(b), 1e-8)
    return float(np.max(np.abs(a - b) / denom))
