"""First-order optimizers operating on (params, grads) array lists.

Pensieve's reference implementation trained the actor and critic with
RMSProp; Adam and plain momentum SGD are provided as well.  Optimizers
mutate parameter arrays in place so that layers, ensembles, and save/load
all observe the same storage.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError

__all__ = ["Optimizer", "SGD", "RMSProp", "Adam", "StackedRMSProp"]


class Optimizer:
    """Base optimizer bound to a fixed list of parameter arrays."""

    def __init__(self, params: list[np.ndarray], learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ModelError(f"learning_rate must be positive, got {learning_rate}")
        self.params = list(params)
        self.learning_rate = learning_rate

    def step(self, grads: list[np.ndarray]) -> None:
        """Apply one update given gradients aligned with the parameters."""
        if len(grads) != len(self.params):
            raise ModelError(
                f"got {len(grads)} gradients for {len(self.params)} parameters"
            )
        for index, (param, grad) in enumerate(zip(self.params, grads)):
            if param.shape != grad.shape:
                raise ModelError(
                    f"parameter {index} shape {param.shape} != gradient {grad.shape}"
                )
            self._update(index, param, grad)

    def _update(self, index: int, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(
        self,
        params: list[np.ndarray],
        learning_rate: float = 1e-2,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(params, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ModelError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in self.params]

    def _update(self, index: int, param: np.ndarray, grad: np.ndarray) -> None:
        velocity = self._velocity[index]
        velocity *= self.momentum
        velocity -= self.learning_rate * grad
        param += velocity


class RMSProp(Optimizer):
    """RMSProp, the optimizer used by the original Pensieve training code."""

    def __init__(
        self,
        params: list[np.ndarray],
        learning_rate: float = 1e-3,
        decay: float = 0.99,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(params, learning_rate)
        if not 0.0 < decay < 1.0:
            raise ModelError(f"decay must be in (0, 1), got {decay}")
        self.decay = decay
        self.epsilon = epsilon
        self._mean_square = [np.zeros_like(p) for p in self.params]

    def _update(self, index: int, param: np.ndarray, grad: np.ndarray) -> None:
        mean_square = self._mean_square[index]
        mean_square *= self.decay
        mean_square += (1.0 - self.decay) * grad**2
        param -= self.learning_rate * grad / (np.sqrt(mean_square) + self.epsilon)


class StackedRMSProp(RMSProp):
    """:class:`RMSProp` over member-stacked ``(members, ...)`` parameters.

    The RMSProp update rule is purely elementwise, so stepping one stacked
    array is bitwise identical to stepping each member's slice with its
    own :class:`RMSProp` instance — member *m*'s mean-square accumulator
    occupies slice ``m`` of the stacked accumulator and never mixes with
    the others.  This subclass adds no arithmetic; it exists so the
    lockstep ensemble trainer's optimizer states are explicitly documented
    as per-member-independent.
    """


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(
        self,
        params: list[np.ndarray],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(params, learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ModelError(f"betas must be in [0, 1), got ({beta1}, {beta2})")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step_count = 0
        self._m = [np.zeros_like(p) for p in self.params]
        self._v = [np.zeros_like(p) for p in self.params]

    def step(self, grads: list[np.ndarray]) -> None:
        self._step_count += 1
        super().step(grads)

    def _update(self, index: int, param: np.ndarray, grad: np.ndarray) -> None:
        m = self._m[index]
        v = self._v[index]
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad**2
        m_hat = m / (1.0 - self.beta1**self._step_count)
        v_hat = v / (1.0 - self.beta2**self._step_count)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
