"""A GRU layer with explicit backpropagation through time.

Sequence models are the natural next step for throughput prediction
(Fugu's follow-ups and CS2P's HMM both exploit temporal structure beyond
a fixed window).  :class:`GRU` processes ``(batch, time, features)``
inputs and returns the final hidden state; the backward pass unrolls
through time, accumulating parameter gradients exactly like the rest of
:mod:`repro.nn` so the optimizers and gradient checker work unchanged.

Gate equations (reset ``r``, update ``z``, candidate ``c``)::

    r_t = sigmoid(x_t W_xr + h_{t-1} W_hr + b_r)
    z_t = sigmoid(x_t W_xz + h_{t-1} W_hz + b_z)
    c_t = tanh(x_t W_xc + (r_t * h_{t-1}) W_hc + b_c)
    h_t = (1 - z_t) * h_{t-1} + z_t * c_t

:class:`StackedGRU` is the member-stacked variant: ``M`` independent GRUs
advanced in lockstep over ``(members, batch, time, features)`` inputs, so
each per-timestep matmul batches across members instead of being repeated
``M`` times.  Stacked ``matmul`` runs one GEMM per member slice and every
other operation is elementwise, so forward, backward, and accumulated
gradients are bitwise identical to looping over the member GRUs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.nn.initializers import glorot_uniform
from repro.nn.layers import Layer

__all__ = ["GRU", "StackedGRU"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


class GRU(Layer):
    """A single-layer GRU returning the last hidden state."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator,
        initializer=glorot_uniform,
    ) -> None:
        if input_size < 1 or hidden_size < 1:
            raise ModelError(
                f"GRU sizes must be positive, got ({input_size}, {hidden_size})"
            )
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Gate weights stacked as [reset, update, candidate].
        self.w_x = initializer((input_size, 3 * hidden_size), rng)
        self.w_h = initializer((hidden_size, 3 * hidden_size), rng)
        self.bias = np.zeros(3 * hidden_size)
        self.grad_w_x = np.zeros_like(self.w_x)
        self.grad_w_h = np.zeros_like(self.w_h)
        self.grad_bias = np.zeros_like(self.bias)
        self._cache: dict | None = None

    @property
    def params(self) -> list[np.ndarray]:
        return [self.w_x, self.w_h, self.bias]

    @property
    def grads(self) -> list[np.ndarray]:
        return [self.grad_w_x, self.grad_w_h, self.grad_bias]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ModelError(
                f"GRU expected (batch, time, {self.input_size}), got {x.shape}"
            )
        batch, steps, _ = x.shape
        h = np.zeros((batch, self.hidden_size))
        hs = [h]
        gates = []
        n = self.hidden_size
        for t in range(steps):
            pre = x[:, t, :] @ self.w_x + h @ self.w_h + self.bias
            r = _sigmoid(pre[:, :n])
            z = _sigmoid(pre[:, n : 2 * n])
            # Candidate uses the reset-gated hidden state.
            pre_c = (
                x[:, t, :] @ self.w_x[:, 2 * n :]
                + (r * h) @ self.w_h[:, 2 * n :]
                + self.bias[2 * n :]
            )
            c = np.tanh(pre_c)
            h = (1.0 - z) * h + z * c
            gates.append((r, z, c))
            hs.append(h)
        self._cache = {"x": x, "hs": hs, "gates": gates}
        return h

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ModelError("backward called before forward")
        x = self._cache["x"]
        hs = self._cache["hs"]
        gates = self._cache["gates"]
        batch, steps, _ = x.shape
        n = self.hidden_size
        grad_h = np.asarray(grad_out, dtype=float)
        grad_x = np.zeros_like(x)
        for t in range(steps - 1, -1, -1):
            r, z, c = gates[t]
            h_prev = hs[t]
            # h_t = (1 - z) h_prev + z c
            grad_z = grad_h * (c - h_prev)
            grad_c = grad_h * z
            grad_h_prev = grad_h * (1.0 - z)
            # c = tanh(pre_c)
            grad_pre_c = grad_c * (1.0 - c**2)
            self.grad_w_x[:, 2 * n :] += x[:, t, :].T @ grad_pre_c
            self.grad_w_h[:, 2 * n :] += (r * h_prev).T @ grad_pre_c
            self.grad_bias[2 * n :] += grad_pre_c.sum(axis=0)
            grad_rh = grad_pre_c @ self.w_h[:, 2 * n :].T
            grad_r = grad_rh * h_prev
            grad_h_prev += grad_rh * r
            grad_x[:, t, :] += grad_pre_c @ self.w_x[:, 2 * n :].T
            # r and z gates: sigmoid(pre)
            grad_pre_r = grad_r * r * (1.0 - r)
            grad_pre_z = grad_z * z * (1.0 - z)
            self.grad_w_x[:, :n] += x[:, t, :].T @ grad_pre_r
            self.grad_w_x[:, n : 2 * n] += x[:, t, :].T @ grad_pre_z
            self.grad_w_h[:, :n] += h_prev.T @ grad_pre_r
            self.grad_w_h[:, n : 2 * n] += h_prev.T @ grad_pre_z
            self.grad_bias[:n] += grad_pre_r.sum(axis=0)
            self.grad_bias[n : 2 * n] += grad_pre_z.sum(axis=0)
            grad_x[:, t, :] += (
                grad_pre_r @ self.w_x[:, :n].T + grad_pre_z @ self.w_x[:, n : 2 * n].T
            )
            grad_h_prev += (
                grad_pre_r @ self.w_h[:, :n].T + grad_pre_z @ self.w_h[:, n : 2 * n].T
            )
            grad_h = grad_h_prev
        return grad_x


class StackedGRU(Layer):
    """``M`` member :class:`GRU` layers advanced in lockstep.

    Inputs are ``(members, batch, time, features)``; the per-timestep
    recurrence runs once with stacked matmuls instead of once per member,
    and the backward pass unrolls through time the same way.  Member *m*'s
    slice goes through exactly the floats of its own :class:`GRU`, so the
    final hidden states and the accumulated parameter gradients are
    bitwise identical to looping over the members.
    """

    def __init__(self, w_x: np.ndarray, w_h: np.ndarray, bias: np.ndarray) -> None:
        w_x = np.asarray(w_x, dtype=float)
        w_h = np.asarray(w_h, dtype=float)
        bias = np.asarray(bias, dtype=float)
        if w_x.ndim != 3 or w_h.ndim != 3 or bias.ndim != 2:
            raise ModelError("stacked GRU parameters must carry a member axis")
        if w_x.shape[2] % 3 != 0 or w_h.shape[2] != w_x.shape[2]:
            raise ModelError(
                f"gate widths disagree: w_x {w_x.shape}, w_h {w_h.shape}"
            )
        if w_h.shape[1] * 3 != w_h.shape[2] or bias.shape != w_x.shape[::2]:
            raise ModelError(
                f"inconsistent stacked GRU shapes: w_x {w_x.shape}, "
                f"w_h {w_h.shape}, bias {bias.shape}"
            )
        self.input_size = w_x.shape[1]
        self.hidden_size = w_h.shape[1]
        self.w_x = w_x
        self.w_h = w_h
        self.bias = bias
        self.grad_w_x = np.zeros_like(self.w_x)
        self.grad_w_h = np.zeros_like(self.w_h)
        self.grad_bias = np.zeros_like(self.bias)
        self._cache: dict | None = None

    @classmethod
    def from_layers(cls, layers: list[GRU]) -> "StackedGRU":
        """Stack the (copied) parameters of identically shaped members."""
        if not layers:
            raise ModelError("need at least one GRU to stack")
        shapes = {(layer.input_size, layer.hidden_size) for layer in layers}
        if len(shapes) != 1:
            raise ModelError(f"cannot stack GRUs of sizes {sorted(shapes)}")
        return cls(
            np.stack([layer.w_x for layer in layers]),
            np.stack([layer.w_h for layer in layers]),
            np.stack([layer.bias for layer in layers]),
        )

    def write_back(self, layers: list[GRU]) -> None:
        """Copy the trained stacked parameters into the member GRUs."""
        if len(layers) != self.w_x.shape[0]:
            raise ModelError(
                f"{len(layers)} layers for {self.w_x.shape[0]} stacked members"
            )
        for index, layer in enumerate(layers):
            layer.w_x[...] = self.w_x[index]
            layer.w_h[...] = self.w_h[index]
            layer.bias[...] = self.bias[index]

    @property
    def params(self) -> list[np.ndarray]:
        return [self.w_x, self.w_h, self.bias]

    @property
    def grads(self) -> list[np.ndarray]:
        return [self.grad_w_x, self.grad_w_h, self.grad_bias]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 4 or x.shape[0] != self.w_x.shape[0] or x.shape[3] != self.input_size:
            raise ModelError(
                f"StackedGRU expected ({self.w_x.shape[0]}, batch, time, "
                f"{self.input_size}), got {x.shape}"
            )
        members, batch, steps, _ = x.shape
        n = self.hidden_size
        h = np.zeros((members, batch, n))
        hs = [h]
        gates = []
        for t in range(steps):
            xt = x[:, :, t, :]
            pre = np.matmul(xt, self.w_x) + np.matmul(h, self.w_h) + self.bias[:, None, :]
            r = _sigmoid(pre[..., :n])
            z = _sigmoid(pre[..., n : 2 * n])
            # Candidate uses the reset-gated hidden state.
            pre_c = (
                np.matmul(xt, self.w_x[:, :, 2 * n :])
                + np.matmul(r * h, self.w_h[:, :, 2 * n :])
                + self.bias[:, None, 2 * n :]
            )
            c = np.tanh(pre_c)
            h = (1.0 - z) * h + z * c
            gates.append((r, z, c))
            hs.append(h)
        self._cache = {"x": x, "hs": hs, "gates": gates}
        return h

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ModelError("backward called before forward")
        x = self._cache["x"]
        hs = self._cache["hs"]
        gates = self._cache["gates"]
        members, batch, steps, _ = x.shape
        n = self.hidden_size
        grad_h = np.asarray(grad_out, dtype=float)
        grad_x = np.zeros_like(x)
        for t in range(steps - 1, -1, -1):
            r, z, c = gates[t]
            h_prev = hs[t]
            xt = x[:, :, t, :]
            xt_T = xt.transpose(0, 2, 1)
            # h_t = (1 - z) h_prev + z c
            grad_z = grad_h * (c - h_prev)
            grad_c = grad_h * z
            grad_h_prev = grad_h * (1.0 - z)
            # c = tanh(pre_c)
            grad_pre_c = grad_c * (1.0 - c**2)
            self.grad_w_x[:, :, 2 * n :] += np.matmul(xt_T, grad_pre_c)
            self.grad_w_h[:, :, 2 * n :] += np.matmul(
                (r * h_prev).transpose(0, 2, 1), grad_pre_c
            )
            self.grad_bias[:, 2 * n :] += grad_pre_c.sum(axis=1)
            grad_rh = np.matmul(grad_pre_c, self.w_h[:, :, 2 * n :].transpose(0, 2, 1))
            grad_r = grad_rh * h_prev
            grad_h_prev += grad_rh * r
            grad_x[:, :, t, :] += np.matmul(
                grad_pre_c, self.w_x[:, :, 2 * n :].transpose(0, 2, 1)
            )
            # r and z gates: sigmoid(pre)
            grad_pre_r = grad_r * r * (1.0 - r)
            grad_pre_z = grad_z * z * (1.0 - z)
            self.grad_w_x[:, :, :n] += np.matmul(xt_T, grad_pre_r)
            self.grad_w_x[:, :, n : 2 * n] += np.matmul(xt_T, grad_pre_z)
            h_prev_T = h_prev.transpose(0, 2, 1)
            self.grad_w_h[:, :, :n] += np.matmul(h_prev_T, grad_pre_r)
            self.grad_w_h[:, :, n : 2 * n] += np.matmul(h_prev_T, grad_pre_z)
            self.grad_bias[:, :n] += grad_pre_r.sum(axis=1)
            self.grad_bias[:, n : 2 * n] += grad_pre_z.sum(axis=1)
            grad_x[:, :, t, :] += (
                np.matmul(grad_pre_r, self.w_x[:, :, :n].transpose(0, 2, 1))
                + np.matmul(grad_pre_z, self.w_x[:, :, n : 2 * n].transpose(0, 2, 1))
            )
            grad_h_prev += (
                np.matmul(grad_pre_r, self.w_h[:, :, :n].transpose(0, 2, 1))
                + np.matmul(grad_pre_z, self.w_h[:, :, n : 2 * n].transpose(0, 2, 1))
            )
            grad_h = grad_h_prev
        return grad_x
