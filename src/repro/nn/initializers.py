"""Weight initializers.

The paper's ensembles differ *only* in network initialization ("the only
difference in the training process is the initialization of the neural
network variables"), so initializers take an explicit RNG: the same seed
reproduces the same member, different seeds give independent members.
"""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_normal", "normal", "zeros"]


def glorot_uniform(
    shape: tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialization, suited to tanh/linear layers."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He normal initialization, suited to ReLU layers."""
    fan_in, _ = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def normal(
    shape: tuple[int, ...], rng: np.random.Generator, scale: float = 0.01
) -> np.ndarray:
    """Plain scaled-normal initialization."""
    return rng.normal(0.0, scale, size=shape)


def zeros(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-zero initialization (biases). The RNG argument keeps a uniform
    initializer signature."""
    del rng
    return np.zeros(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Fan-in / fan-out for dense ``(in, out)`` and conv ``(out, in, k)``."""
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 3:
        out_channels, in_channels, kernel = shape
        return in_channels * kernel, out_channels * kernel
    raise ValueError(f"unsupported weight shape {shape}")
