"""repro: a reproduction of "Online Safety Assurance for Learning-Augmented
Systems" (Rotman, Schapira, Tamar — HotNets '20).

The package implements the paper's contribution — real-time detection of
out-of-distribution operation for learned sequential decision makers, with
defaulting to a safe policy — together with every substrate its evaluation
needs: a chunk-level ABR video-streaming simulator, a numpy neural-network
and actor-critic (Pensieve) stack, network-trace generators, a from-scratch
one-class SVM, baseline ABR policies, and the experiment harness that
regenerates every figure in the paper.

Quickstart::

    from repro import (
        envivio_dash3_manifest, make_dataset, BufferBasedPolicy,
        build_safety_suite, run_session,
    )

    manifest = envivio_dash3_manifest()
    split = make_dataset("norway").split()
    bb = BufferBasedPolicy(manifest.bitrates_kbps)
    suite = build_safety_suite(manifest, split, bb, is_synthetic=False)
    result = run_session(suite.nd_controller, manifest, split.test[0])
    print(result.qoe, result.default_fraction)
"""

from repro.abr import ABREnv, SessionResult, run_session
from repro.abr.session import run_monitored_session
from repro.abr.suite import SafetySuite, build_safety_suite
from repro.config import FAST, PAPER, ExperimentConfig, get_config
from repro.core import (
    PolicyEnsembleSignal,
    SafetyConfig,
    SafetyController,
    SafetyMonitor,
    StateNoveltySignal,
    ValueEnsembleSignal,
)
from repro.errors import ReproError
from repro.novelty import KDEDetector, MahalanobisDetector, OneClassSVM
from repro.parallel import parallel_map, resolve_max_workers
from repro.pensieve import A2CTrainer, PensieveAgent, TrainingConfig
from repro.perf import fast_paths, fast_paths_enabled, set_fast_paths
from repro.policies import (
    BolaPolicy,
    BufferBasedPolicy,
    ConstantPolicy,
    PredictiveMPCPolicy,
    RandomPolicy,
    RateBasedPolicy,
    RobustMPCPolicy,
)
from repro.serve import ServeEngine, SessionSpec, serve_sessions
from repro.traces import Dataset, Trace, make_dataset
from repro.video import LinearQoE, LogQoE, VideoManifest, envivio_dash3_manifest

__version__ = "1.0.0"

__all__ = [
    "A2CTrainer",
    "ABREnv",
    "BolaPolicy",
    "BufferBasedPolicy",
    "ConstantPolicy",
    "Dataset",
    "ExperimentConfig",
    "FAST",
    "KDEDetector",
    "LinearQoE",
    "LogQoE",
    "MahalanobisDetector",
    "OneClassSVM",
    "PAPER",
    "PensieveAgent",
    "PolicyEnsembleSignal",
    "PredictiveMPCPolicy",
    "RandomPolicy",
    "RateBasedPolicy",
    "ReproError",
    "RobustMPCPolicy",
    "SafetyConfig",
    "SafetyController",
    "SafetyMonitor",
    "SafetySuite",
    "ServeEngine",
    "SessionResult",
    "SessionSpec",
    "StateNoveltySignal",
    "Trace",
    "TrainingConfig",
    "ValueEnsembleSignal",
    "VideoManifest",
    "build_safety_suite",
    "envivio_dash3_manifest",
    "fast_paths",
    "fast_paths_enabled",
    "get_config",
    "make_dataset",
    "parallel_map",
    "resolve_max_workers",
    "run_monitored_session",
    "run_session",
    "serve_sessions",
    "set_fast_paths",
]
