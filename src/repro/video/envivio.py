"""A synthesized EnvivioDash3-like manifest.

The paper streams the "EnvivioDash3" video from the DASH-246 JavaScript
reference client: 48 chunks of ~4 seconds, encoded at six resolutions, and
concatenated five times (240 chunks, 16 minutes).  The actual chunk files
are not available offline, so this module synthesises a chunk-size table
with the properties that matter to an ABR algorithm:

* nominal size ``bitrate * chunk_duration / 8`` per chunk,
* per-chunk variable-bitrate (VBR) fluctuation around the nominal size,
  correlated across rungs (a complex scene is big at *every* bitrate), and
* deterministic content: a fixed internal seed makes every call return the
  same video, like a real file on disk would.

The bitrate ladder is Pensieve's: {300, 750, 1200, 1850, 2850, 4300}
kbit/s, corresponding to the paper's {240, 360, 480, 720, 1080, 1440}p
resolutions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import VideoError
from repro.video.manifest import VideoManifest

__all__ = ["PENSIEVE_BITRATES_KBPS", "envivio_dash3_manifest"]

#: Pensieve's VIDEO_BIT_RATE ladder (kbit/s).
PENSIEVE_BITRATES_KBPS = (300.0, 750.0, 1200.0, 1850.0, 2850.0, 4300.0)

_BASE_CHUNKS = 48
_CHUNK_DURATION_S = 4.0
_CONTENT_SEED = 0x0E17_1D10  # fixed: the video is a constant, not a parameter
_VBR_STD = 0.15
_VBR_MIN_FACTOR = 0.55
_VBR_MAX_FACTOR = 1.6


def envivio_dash3_manifest(
    repeats: int = 5,
    vbr_std: float = _VBR_STD,
) -> VideoManifest:
    """Return the synthesized EnvivioDash3 manifest, concatenated *repeats*
    times (the paper uses 5).

    *vbr_std* controls the per-chunk size fluctuation; the default matches
    typical H.264 VBR segment-size variation of ~15%.
    """
    if repeats < 1:
        raise VideoError(f"repeats must be >= 1, got {repeats}")
    if vbr_std < 0:
        raise VideoError(f"vbr_std must be >= 0, got {vbr_std}")
    rng = np.random.default_rng(_CONTENT_SEED)
    bitrates = np.asarray(PENSIEVE_BITRATES_KBPS)
    nominal = bitrates * 1000.0 * _CHUNK_DURATION_S / 8.0  # bytes per chunk
    # Scene complexity per chunk: one multiplicative factor shared by all
    # rungs, plus small independent per-rung jitter (encoder noise).
    complexity = rng.normal(1.0, vbr_std, size=(_BASE_CHUNKS, 1))
    jitter = rng.normal(1.0, vbr_std / 3.0, size=(_BASE_CHUNKS, bitrates.size))
    factors = np.clip(complexity * jitter, _VBR_MIN_FACTOR, _VBR_MAX_FACTOR)
    sizes = nominal[None, :] * factors
    base = VideoManifest(
        bitrates_kbps=bitrates,
        chunk_sizes_bytes=sizes,
        chunk_duration_s=_CHUNK_DURATION_S,
        name="enviviodash3",
    )
    return base.concatenated(repeats) if repeats > 1 else base
