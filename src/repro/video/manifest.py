"""Video manifests: which bitrates exist and how big every chunk is.

A manifest is the ABR-relevant projection of a DASH MPD: the bitrate ladder
and the size in bytes of every (chunk, bitrate) pair.  Chunk sizes are what
couple the video to the network — download time is size divided by
throughput — so they are the only video property the simulator needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import VideoError

__all__ = ["VideoManifest"]


@dataclass(frozen=True)
class VideoManifest:
    """Sizes and rates of an encoded, segmented video.

    Attributes:
        bitrates_kbps: the bitrate ladder in kbit/s, strictly increasing.
        chunk_sizes_bytes: array of shape ``(num_chunks, num_bitrates)``;
            entry ``[n, q]`` is the size in bytes of chunk ``n`` encoded at
            ladder rung ``q``.
        chunk_duration_s: playback seconds per chunk.
        name: identifier for logging.
    """

    bitrates_kbps: np.ndarray
    chunk_sizes_bytes: np.ndarray
    chunk_duration_s: float = 4.0
    name: str = "video"

    def __post_init__(self) -> None:
        bitrates = np.asarray(self.bitrates_kbps, dtype=float)
        sizes = np.asarray(self.chunk_sizes_bytes, dtype=float)
        if bitrates.ndim != 1 or bitrates.size < 2:
            raise VideoError("bitrate ladder needs at least two rungs")
        if np.any(bitrates <= 0):
            raise VideoError("bitrates must be positive")
        if np.any(np.diff(bitrates) <= 0):
            raise VideoError("bitrate ladder must be strictly increasing")
        if sizes.ndim != 2 or sizes.shape[1] != bitrates.size:
            raise VideoError(
                f"chunk sizes must be (chunks, {bitrates.size}), got {sizes.shape}"
            )
        if sizes.shape[0] < 1:
            raise VideoError("video needs at least one chunk")
        if not np.all(np.isfinite(sizes)) or not np.all(np.isfinite(bitrates)):
            raise VideoError("bitrates and chunk sizes must be finite")
        if np.any(sizes <= 0):
            raise VideoError("chunk sizes must be positive")
        if self.chunk_duration_s <= 0:
            raise VideoError(
                f"chunk duration must be positive, got {self.chunk_duration_s}"
            )
        object.__setattr__(self, "bitrates_kbps", bitrates)
        object.__setattr__(self, "chunk_sizes_bytes", sizes)

    @property
    def num_chunks(self) -> int:
        """Number of segments in the video."""
        return int(self.chunk_sizes_bytes.shape[0])

    @property
    def num_bitrates(self) -> int:
        """Number of rungs in the bitrate ladder."""
        return int(self.bitrates_kbps.size)

    @property
    def duration_s(self) -> float:
        """Total playback duration."""
        return self.num_chunks * self.chunk_duration_s

    def chunk_size(self, chunk_index: int, bitrate_index: int) -> float:
        """Size in bytes of one (chunk, bitrate) pair, with bounds checks."""
        if not 0 <= chunk_index < self.num_chunks:
            raise VideoError(
                f"chunk index {chunk_index} out of range [0, {self.num_chunks})"
            )
        if not 0 <= bitrate_index < self.num_bitrates:
            raise VideoError(
                f"bitrate index {bitrate_index} out of range [0, {self.num_bitrates})"
            )
        return float(self.chunk_sizes_bytes[chunk_index, bitrate_index])

    def next_chunk_sizes(self, chunk_index: int) -> np.ndarray:
        """Sizes of the upcoming chunk at every bitrate (a Pensieve feature)."""
        if not 0 <= chunk_index < self.num_chunks:
            raise VideoError(
                f"chunk index {chunk_index} out of range [0, {self.num_chunks})"
            )
        return self.chunk_sizes_bytes[chunk_index].copy()

    def concatenated(self, repeats: int) -> "VideoManifest":
        """The video repeated *repeats* times back to back.

        The paper prolongs EnvivioDash3 by "concatenating the original
        video five times".
        """
        if repeats < 1:
            raise VideoError(f"repeats must be >= 1, got {repeats}")
        return VideoManifest(
            bitrates_kbps=self.bitrates_kbps.copy(),
            chunk_sizes_bytes=np.tile(self.chunk_sizes_bytes, (repeats, 1)),
            chunk_duration_s=self.chunk_duration_s,
            name=f"{self.name}x{repeats}",
        )
