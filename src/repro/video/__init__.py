"""Video model: bitrate ladders, chunk-size manifests, and QoE metrics.

The paper streams the EnvivioDash3 reference video (48 chunks of ~4 s at six
encodings, concatenated five times to prolong the session) and scores
sessions with the conventional linear QoE metric of [27, 63].  The real
MPD/chunk files are not available offline, so :mod:`repro.video.envivio`
synthesises a deterministic chunk-size table with realistic variable-bitrate
noise at Pensieve's bitrate ladder.
"""

from repro.video.envivio import envivio_dash3_manifest
from repro.video.manifest import VideoManifest
from repro.video.qoe import LinearQoE, LogQoE, QoEMetric

__all__ = [
    "LinearQoE",
    "LogQoE",
    "QoEMetric",
    "VideoManifest",
    "envivio_dash3_manifest",
]
