"""Quality-of-experience metrics.

The paper scores sessions with "the conventional linear QoE metric from
previous studies [27, 63]":

    QoE = sum_n R_n  -  mu * sum_n T_n  -  sum_n |R_{n+1} - R_n|

where ``R_n`` is the bitrate (Mbit/s) at which chunk ``n`` was downloaded,
``T_n`` the rebuffering time it caused, and ``mu`` the rebuffer penalty.
Pensieve's linear variant uses ``mu = 4.3`` (the top rung in Mbit/s).  The
log variant from [27] is included for the extension experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["QoEMetric", "LinearQoE", "LogQoE"]


class QoEMetric:
    """Base QoE metric over per-chunk bitrates and rebuffer times.

    Subclasses define :meth:`quality` (per-chunk quality from bitrate in
    Mbit/s); the rebuffer and smoothness penalties follow the shared linear
    form above, applied in quality units.
    """

    def __init__(self, rebuffer_penalty: float, smoothness_penalty: float = 1.0) -> None:
        if rebuffer_penalty < 0 or smoothness_penalty < 0:
            raise ConfigError("QoE penalties must be non-negative")
        self.rebuffer_penalty = rebuffer_penalty
        self.smoothness_penalty = smoothness_penalty

    def quality(self, bitrate_mbps: np.ndarray) -> np.ndarray:
        """Per-chunk quality as a function of bitrate (Mbit/s)."""
        raise NotImplementedError

    def chunk_reward(
        self,
        bitrate_mbps: float,
        rebuffer_s: float,
        previous_bitrate_mbps: float | None,
    ) -> float:
        """Per-chunk reward: the summand of the session QoE.

        This is the reward Pensieve's RL formulation maximizes; summing it
        over a session reproduces :meth:`session_qoe` exactly.
        """
        if rebuffer_s < 0:
            raise ConfigError(f"rebuffer time must be >= 0, got {rebuffer_s}")
        quality = float(self.quality(np.asarray([bitrate_mbps]))[0])
        reward = quality - self.rebuffer_penalty * rebuffer_s
        if previous_bitrate_mbps is not None:
            previous = float(self.quality(np.asarray([previous_bitrate_mbps]))[0])
            reward -= self.smoothness_penalty * abs(quality - previous)
        return reward

    def session_qoe(
        self,
        bitrates_mbps: np.ndarray | list[float],
        rebuffer_times_s: np.ndarray | list[float],
    ) -> float:
        """Total QoE of a session (the paper's displayed metric)."""
        bitrates = np.asarray(bitrates_mbps, dtype=float)
        rebuffers = np.asarray(rebuffer_times_s, dtype=float)
        if bitrates.shape != rebuffers.shape:
            raise ConfigError(
                f"shape mismatch: {bitrates.shape} bitrates vs "
                f"{rebuffers.shape} rebuffer times"
            )
        if bitrates.size == 0:
            raise ConfigError("session has no chunks")
        if np.any(rebuffers < 0):
            raise ConfigError("rebuffer times must be >= 0")
        quality = self.quality(bitrates)
        total = quality.sum()
        total -= self.rebuffer_penalty * rebuffers.sum()
        total -= self.smoothness_penalty * np.abs(np.diff(quality)).sum()
        return float(total)


@dataclass(frozen=True)
class _LinearSpec:
    rebuffer_penalty: float = 4.3


class LinearQoE(QoEMetric):
    """The paper's linear metric: quality = bitrate in Mbit/s, mu = 4.3."""

    def __init__(
        self, rebuffer_penalty: float = 4.3, smoothness_penalty: float = 1.0
    ) -> None:
        super().__init__(rebuffer_penalty, smoothness_penalty)

    def quality(self, bitrate_mbps: np.ndarray) -> np.ndarray:
        return np.asarray(bitrate_mbps, dtype=float)


class LogQoE(QoEMetric):
    """Pensieve's QoE_log variant: quality = log(R / R_min).

    Diminishing returns at high bitrates; used by the extension benchmarks
    to check that findings are not an artifact of the linear metric.
    """

    def __init__(
        self,
        min_bitrate_mbps: float = 0.3,
        rebuffer_penalty: float = 2.66,
        smoothness_penalty: float = 1.0,
    ) -> None:
        if min_bitrate_mbps <= 0:
            raise ConfigError(
                f"min_bitrate_mbps must be positive, got {min_bitrate_mbps}"
            )
        super().__init__(rebuffer_penalty, smoothness_penalty)
        self.min_bitrate_mbps = min_bitrate_mbps

    def quality(self, bitrate_mbps: np.ndarray) -> np.ndarray:
        bitrate = np.asarray(bitrate_mbps, dtype=float)
        if np.any(bitrate <= 0):
            raise ConfigError("bitrates must be positive for the log metric")
        return np.log(bitrate / self.min_bitrate_mbps)
