"""The uncertainty-signal protocol and the pluggable-component registry.

A signal observes the same observation stream as the agent and emits one
scalar per decision step.  The paper's three signals differ in what they
look at — the environment state (``U_S``), the policy output (``U_pi``),
or the value output (``U_V``) — but share this interface, which is what
lets the monitor, the calibration machinery, and the benchmarks treat
them uniformly.

Beyond the protocol itself, this module hosts the string-keyed component
registries that make the safety runtime pluggable:

* :data:`SIGNALS` — uncertainty signals by paper name (``U_S``, ``U_pi``,
  ``U_V``),
* :data:`DETECTORS` — novelty detectors usable as ``U_S`` backends
  (``novelty/ocsvm``, ``novelty/kde``, ``novelty/knn``,
  ``novelty/mahalanobis``),
* :data:`TRIGGERS` — defaulting rules (``consecutive``, ``variance``,
  plus the future-work strategies ``ewma``/``cusum``/``hysteresis``).

Built-in components self-register when their defining module is imported;
:func:`make_signal` / :func:`make_detector` / :func:`make_trigger` force
those imports lazily, so looking a key up never depends on import order
and the registry itself stays free of heavyweight dependencies.

Signals also carry a *serialization* contract: :meth:`state_dict`
returns the signal's per-session rolling state as a JSON-able mapping and
:meth:`load_state_dict` restores it, so a monitored session can be
suspended on one worker and resumed bitwise-identically on another (see
:class:`repro.core.monitor.SafetyMonitor`).
"""

from __future__ import annotations

from typing import Callable, TypeVar

import numpy as np

from repro.errors import ConfigError, SafetyError

__all__ = [
    "ComponentRegistry",
    "DETECTORS",
    "SIGNALS",
    "TRIGGERS",
    "UncertaintySignal",
    "make_detector",
    "make_signal",
    "make_trigger",
]

_T = TypeVar("_T")


class UncertaintySignal:
    """Per-step uncertainty measurement over an observation stream."""

    #: Binary signals (like ``U_S``) emit {0, 1}; continuous signals emit
    #: non-negative reals.  The thresholding layer picks its rule by this.
    binary: bool = False

    #: Stateless signals keep no per-session rolling state: measuring one
    #: observation never changes a later value.  Only stateless signals
    #: may be shared across concurrent sessions or measured through an
    #: externally batched path (:meth:`measure_batch`, the serve engine).
    stateless: bool = False

    def reset(self) -> None:
        """Clear per-session state (rolling windows, histories)."""

    def measure(self, observation: np.ndarray) -> float:
        """Uncertainty of the agent's next decision given *observation*.

        Called exactly once per decision step, in order; implementations
        may maintain rolling state across calls within a session.
        """
        raise NotImplementedError

    def measure_batch(self, observations: np.ndarray) -> np.ndarray:
        """Measure many *independent* observations in one call.

        The rows of *observations* belong to different sessions (the
        serve engine stacks one observation per concurrent session), so
        this is only meaningful for stateless signals — a stateful signal
        would fold foreign sessions into its rolling windows.  Subclasses
        with a fused forward override this; the base implementation just
        loops :meth:`measure`.
        """
        if not self.stateless:
            raise SafetyError(
                f"{type(self).__name__} is stateful; its values depend on "
                "one session's observation order and cannot be batched "
                "across sessions"
            )
        return np.array(
            [self.measure(observation) for observation in observations]
        )

    def state_dict(self) -> dict:
        """The signal's per-session rolling state as a JSON-able mapping.

        Stateless signals (the ensemble signals — their networks are
        frozen artifacts, not session state) return ``{}``.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`.

        After restoring, the signal must produce bitwise-identical values
        for the same observation tail as the instance it was captured
        from (property-tested in ``tests/test_monitor_serialization.py``).
        """
        if state:
            raise SafetyError(
                f"{type(self).__name__} is stateless but was asked to "
                f"restore state keys {sorted(state)}"
            )


class ComponentRegistry:
    """String-keyed factories for one kind of pluggable component.

    Components register under a stable key (either directly or with the
    decorator form ``@REGISTRY.register("key")``); callers construct them
    by key with :meth:`create`.  Keys are unique — a duplicate
    registration is a configuration error, not a silent override.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: dict[str, Callable] = {}

    def register(
        self, key: str, factory: Callable[..., _T] | None = None
    ) -> Callable:
        """Register *factory* under *key*; decorator form when omitted."""
        if factory is None:

            def decorator(obj: Callable[..., _T]) -> Callable[..., _T]:
                self.register(key, obj)
                return obj

            return decorator
        if not isinstance(key, str) or not key:
            raise ConfigError(f"{self.kind} key must be a non-empty string")
        if key in self._factories:
            raise ConfigError(f"duplicate {self.kind} key {key!r}")
        self._factories[key] = factory
        return factory

    def create(self, key: str, **kwargs):
        """Construct the component registered under *key*."""
        _ensure_builtin_components()
        if key not in self._factories:
            raise ConfigError(
                f"unknown {self.kind} {key!r}; expected one of {self.keys()}"
            )
        return self._factories[key](**kwargs)

    def keys(self) -> tuple[str, ...]:
        """All registered keys, sorted."""
        _ensure_builtin_components()
        return tuple(sorted(self._factories))

    def __contains__(self, key: str) -> bool:
        _ensure_builtin_components()
        return key in self._factories


#: Uncertainty signals by paper name (``U_S``, ``U_pi``, ``U_V``).
SIGNALS = ComponentRegistry("uncertainty signal")
#: Novelty detectors usable as drop-in ``U_S`` backends.
DETECTORS = ComponentRegistry("novelty detector")
#: Defaulting rules (:class:`repro.core.thresholding.DefaultTrigger`s).
TRIGGERS = ComponentRegistry("default trigger")

_BUILTINS_LOADED = False


def _ensure_builtin_components() -> None:
    """Import every module that self-registers a built-in component.

    Lazy so that ``repro.core.signals`` itself stays import-light and the
    sibling modules (which import this one for the registries) never form
    a cycle.  The novelty detectors sit *below* the core layer and stay
    ignorant of it, so they are registered here rather than in their own
    modules.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.core import (  # noqa: F401  (imported for registration)
        ensemble_signals,
        novelty_signal,
        strategies,
        thresholding,
    )
    from repro.novelty.kde import KDEDetector
    from repro.novelty.knn import KNNDetector
    from repro.novelty.mahalanobis import MahalanobisDetector
    from repro.novelty.ocsvm import OneClassSVM

    for key, detector in (
        ("novelty/ocsvm", OneClassSVM),
        ("novelty/kde", KDEDetector),
        ("novelty/knn", KNNDetector),
        ("novelty/mahalanobis", MahalanobisDetector),
    ):
        DETECTORS.register(key, detector)


def make_signal(key: str, **kwargs) -> UncertaintySignal:
    """Construct a registered uncertainty signal by key."""
    return SIGNALS.create(key, **kwargs)


def make_detector(key: str, **kwargs):
    """Construct a registered novelty detector by key (a ``U_S`` backend)."""
    return DETECTORS.create(key, **kwargs)


def make_trigger(key: str, **kwargs):
    """Construct a registered defaulting rule by key."""
    return TRIGGERS.create(key, **kwargs)
