"""The uncertainty-signal interface.

A signal observes the same observation stream as the agent and emits one
scalar per decision step.  The paper's three signals differ in what they
look at — the environment state (``U_S``), the policy output (``U_pi``),
or the value output (``U_V``) — but share this interface, which is what
lets the controller, the calibration machinery, and the benchmarks treat
them uniformly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["UncertaintySignal"]


class UncertaintySignal:
    """Per-step uncertainty measurement over an observation stream."""

    #: Binary signals (like ``U_S``) emit {0, 1}; continuous signals emit
    #: non-negative reals.  The thresholding layer picks its rule by this.
    binary: bool = False

    def reset(self) -> None:
        """Clear per-session state (rolling windows, histories)."""

    def measure(self, observation: np.ndarray) -> float:
        """Uncertainty of the agent's next decision given *observation*.

        Called exactly once per decision step, in order; implementations
        may maintain rolling state across calls within a session.
        """
        raise NotImplementedError
