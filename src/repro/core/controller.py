"""The safety controller: a learned policy with a safety net.

Wraps a learned policy and a default policy behind the standard policy
interface.  Every decision step it feeds the observation to the
uncertainty signal, the signal value to the trigger, and — once the
trigger fires — hands control to the default policy.

By default the hand-off is *sticky* for the rest of the session, matching
the paper's "defaulting" language (the enhanced system "defaults to BB");
``allow_revert=True`` switches back to the learned policy as soon as the
trigger stops firing, for the extension experiments.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro import obs
from repro.core.signals import UncertaintySignal
from repro.core.thresholding import DefaultTrigger
from repro.errors import SafetyError
from repro.mdp.interfaces import Policy
from repro.perf import fast_paths_enabled

__all__ = ["SafetyController"]


class SafetyController:
    """A policy that is ``learned`` inside its comfort zone, ``default``
    outside it."""

    def __init__(
        self,
        learned: Policy,
        default: Policy,
        signal: UncertaintySignal,
        trigger: DefaultTrigger,
        allow_revert: bool = False,
        name: str = "safe",
    ) -> None:
        if learned is default:
            raise SafetyError("learned and default policies must be distinct")
        self.learned = learned
        self.default = default
        self.signal = signal
        self.trigger = trigger
        self.allow_revert = allow_revert
        self.name = name
        self._defaulted = False
        self.last_decision_defaulted = False
        self.default_steps = 0
        self.total_steps = 0
        # Recent signal values for the observability default-event; only
        # materialized while metric collection is on.
        self._recent_signals: deque[float] | None = None

    def reset(self) -> None:
        """Reset the wrapped policies, the signal, and the trigger."""
        self.learned.reset()
        self.default.reset()
        self.signal.reset()
        self.trigger.reset()
        self._defaulted = False
        self.last_decision_defaulted = False
        self.default_steps = 0
        self.total_steps = 0
        self._recent_signals = None

    def _active_policy(self, observation: np.ndarray) -> Policy:
        """Advance the signal/trigger one step and pick today's policy."""
        if self._defaulted and not self.allow_revert and fast_paths_enabled():
            # Sticky hand-off: the signal can never change another decision
            # this session, so skip measuring it.  QoE and default_fraction
            # are untouched; only the (reset-per-session) signal/trigger
            # internals stop advancing.
            self.last_decision_defaulted = True
            self.total_steps += 1
            self.default_steps += 1
            obs.inc("controller.decisions", controller=self.name, mode="default")
            return self.default
        value = self.signal.measure(observation)
        fired = self.trigger.update(value)
        was_defaulted = self._defaulted
        if self.allow_revert:
            self._defaulted = fired
        else:
            self._defaulted = self._defaulted or fired
        self.last_decision_defaulted = self._defaulted
        self.total_steps += 1
        if self._defaulted:
            self.default_steps += 1
        if obs.enabled():
            self._observe_decision(value, was_defaulted)
        return self.default if self._defaulted else self.learned

    def _observe_decision(self, value: float, was_defaulted: bool) -> None:
        """Record this decision's signal and mode, plus hand-off events
        carrying the window of signal values that led to them.  Only
        called while collection is on; never touches control flow."""
        if self._recent_signals is None:
            window = max(int(getattr(self.trigger, "k", 1)), 1)
            self._recent_signals = deque(maxlen=window)
        self._recent_signals.append(float(value))
        obs.observe("controller.signal", float(value), controller=self.name)
        obs.inc(
            "controller.decisions",
            controller=self.name,
            mode="default" if self._defaulted else "learned",
        )
        if self._defaulted and not was_defaulted:
            obs.event(
                "controller.default",
                controller=self.name,
                step=self.total_steps,
                signal=float(value),
                window=list(self._recent_signals),
            )
        elif was_defaulted and not self._defaulted:
            obs.event(
                "controller.recover",
                controller=self.name,
                step=self.total_steps,
                signal=float(value),
            )

    def act(self, observation: np.ndarray, rng: np.random.Generator) -> int:
        """One decision: measure uncertainty, maybe default, then act."""
        return self._active_policy(observation).act(observation, rng)

    def action_probabilities(self, observation: np.ndarray) -> np.ndarray:
        """The active policy's action distribution.

        Reads the controller's current mode without advancing the signal —
        only :meth:`act` consumes a decision step, so rollout bookkeeping
        that inspects probabilities does not double-count.
        """
        policy = self.default if self._defaulted else self.learned
        return policy.action_probabilities(observation)

    @property
    def default_fraction(self) -> float:
        """Fraction of this session's decisions made by the default policy."""
        if self.total_steps == 0:
            return 0.0
        return self.default_steps / self.total_steps
