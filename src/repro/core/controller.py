"""Backward-compatible home of :class:`SafetyController`.

The controller's window/trigger bookkeeping used to live here,
duplicated against the telemetry in :mod:`repro.core.monitor`; the one
implementation is now the :class:`~repro.core.monitor.SafetyMonitor`
state machine, with the controller as its policy-facing adapter.  This
module re-exports the adapter so historical imports keep working.
"""

from repro.core.monitor import SafetyController

__all__ = ["SafetyController"]
