"""Threshold calibration (Section 2.5) — the domain-agnostic half.

"Online safety assurance with respect to U_S, U_pi, and U_V is calibrated
to attain the same performance when mu_train = mu_test": the ND scheme
uses a fixed rule (l consecutive OOD flags), and the variance thresholds
``alpha`` of the ensemble schemes are then chosen so each scheme's
in-distribution QoE matches the ND scheme's.

This module holds the calibration *decision*: given the candidate
``(alpha, performance)`` table, pick the threshold
(:func:`select_threshold`).  Producing that table requires running
sessions, which is domain work — the ABR-specific candidate collection
and evaluation live in :mod:`repro.abr.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CalibrationError

__all__ = ["CalibrationResult", "select_threshold"]

#: Quantiles of the observed in-distribution window variances used as the
#: data-driven candidate grid.
CANDIDATE_QUANTILES = (
    0.1, 0.25, 0.5, 0.7, 0.8, 0.9, 0.95, 0.98, 0.99, 0.995, 0.999,
)


@dataclass
class CalibrationResult:
    """Outcome of one threshold calibration."""

    alpha: float
    target_qoe: float
    achieved_qoe: float
    candidates: list[tuple[float, float]] = field(default_factory=list)

    @property
    def gap(self) -> float:
        """Absolute in-distribution QoE gap to the target."""
        return abs(self.achieved_qoe - self.target_qoe)


def select_threshold(
    candidates: list[tuple[float, float]],
    target_qoe: float,
    tolerance_fraction: float = 0.02,
) -> CalibrationResult:
    """Pick ``alpha`` from a ``(alpha, achieved_qoe)`` candidate table.

    Among candidates whose performance is within ``tolerance_fraction``
    of the target, the *smallest* (most sensitive) threshold wins: equal
    in-distribution performance should buy as much out-of-distribution
    sensitivity as possible.  If no candidate reaches the tolerance band,
    the closest one is used.
    """
    if tolerance_fraction < 0:
        raise CalibrationError(
            f"tolerance_fraction must be >= 0, got {tolerance_fraction}"
        )
    if not candidates:
        raise CalibrationError("no calibration candidates supplied")
    tolerance = max(tolerance_fraction * abs(target_qoe), 1.0)
    qualifying = [
        pair for pair in candidates if abs(pair[1] - target_qoe) <= tolerance
    ]
    if qualifying:
        best_alpha, best_qoe = min(qualifying, key=lambda pair: pair[0])
    else:
        best_alpha, best_qoe = min(
            candidates, key=lambda pair: (abs(pair[1] - target_qoe), -pair[0])
        )
    return CalibrationResult(
        alpha=float(best_alpha),
        target_qoe=float(target_qoe),
        achieved_qoe=float(best_qoe),
        candidates=[(float(a), float(q)) for a, q in candidates],
    )
