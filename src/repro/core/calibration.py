"""Threshold calibration (Section 2.5).

"Online safety assurance with respect to U_S, U_pi, and U_V is calibrated
to attain the same performance when mu_train = mu_test": the ND scheme
uses a fixed rule (l consecutive OOD flags), and the variance thresholds
``alpha`` of the ensemble schemes are then chosen so each scheme's
in-distribution QoE matches the ND scheme's.

The procedure: collect the candidate signal's window-variance values on
in-distribution sessions (to get a data-driven grid of plausible
``alpha``), evaluate the safety-enhanced agent's mean QoE at each
candidate, and pick the candidate whose QoE is closest to the target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.abr.session import run_session
from repro.core.controller import SafetyController
from repro.core.signals import UncertaintySignal
from repro.core.thresholding import VarianceTrigger
from repro.errors import CalibrationError
from repro.mdp.interfaces import Policy
from repro.traces.trace import Trace
from repro.video.manifest import VideoManifest
from repro.video.qoe import QoEMetric

__all__ = ["CalibrationResult", "calibrate_variance_threshold"]

_CANDIDATE_QUANTILES = (
    0.1, 0.25, 0.5, 0.7, 0.8, 0.9, 0.95, 0.98, 0.99, 0.995, 0.999,
)


@dataclass
class CalibrationResult:
    """Outcome of one threshold calibration."""

    alpha: float
    target_qoe: float
    achieved_qoe: float
    candidates: list[tuple[float, float]] = field(default_factory=list)

    @property
    def gap(self) -> float:
        """Absolute in-distribution QoE gap to the target."""
        return abs(self.achieved_qoe - self.target_qoe)


def evaluate_mean_qoe(
    policy: Policy,
    manifest: VideoManifest,
    traces: tuple[Trace, ...] | list[Trace],
    qoe_metric: QoEMetric | None = None,
    seed: int = 0,
) -> float:
    """Mean session QoE of *policy* over *traces*."""
    if not traces:
        raise CalibrationError("no traces to evaluate on")
    scores = [
        run_session(policy, manifest, trace, qoe_metric=qoe_metric, seed=seed).qoe
        for trace in traces
    ]
    return float(np.mean(scores))


def collect_window_variances(
    signal: UncertaintySignal,
    policy: Policy,
    manifest: VideoManifest,
    traces: tuple[Trace, ...] | list[Trace],
    k: int,
    qoe_metric: QoEMetric | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Observe the signal's k-window variance along in-distribution sessions.

    Runs *policy* (without any defaulting) while feeding the signal, and
    records the rolling variance a :class:`VarianceTrigger` would see —
    the empirical distribution the candidate thresholds are drawn from.
    """
    variances: list[float] = []
    for trace in traces:
        signal.reset()
        probe = VarianceTrigger(alpha=np.inf, k=k, l=1)
        session = run_session(
            policy, manifest, trace, qoe_metric=qoe_metric, seed=seed
        )
        for observation in session.observation_list:
            probe.update(signal.measure(observation))
            variances.append(probe.window_variance())
    if not variances:
        raise CalibrationError("no signal observations collected")
    return np.asarray(variances)


def calibrate_variance_threshold(
    signal: UncertaintySignal,
    learned: Policy,
    default: Policy,
    manifest: VideoManifest,
    traces: tuple[Trace, ...] | list[Trace],
    target_qoe: float,
    k: int = 5,
    l: int = 3,
    qoe_metric: QoEMetric | None = None,
    seed: int = 0,
    candidate_alphas: list[float] | None = None,
    tolerance_fraction: float = 0.02,
) -> CalibrationResult:
    """Choose ``alpha`` so the safety-enhanced agent matches *target_qoe*.

    *traces* must be in-distribution (the paper calibrates on the training
    distribution; we use the validation split).  Among candidates whose
    in-distribution QoE is within ``tolerance_fraction`` of the target,
    the *smallest* (most sensitive) threshold wins: equal in-distribution
    performance should buy as much out-of-distribution sensitivity as
    possible.  If no candidate reaches the tolerance band, the closest
    one is used.  Returns the chosen threshold together with the full
    candidate/QoE table for inspection.
    """
    if tolerance_fraction < 0:
        raise CalibrationError(
            f"tolerance_fraction must be >= 0, got {tolerance_fraction}"
        )
    if signal.binary:
        raise CalibrationError(
            "binary signals use the fixed consecutive rule; only continuous "
            "signals are calibrated"
        )
    if not traces:
        raise CalibrationError("no calibration traces supplied")
    if candidate_alphas is None:
        observed = collect_window_variances(
            signal, learned, manifest, traces, k=k, qoe_metric=qoe_metric, seed=seed
        )
        positive = observed[observed > 0]
        if positive.size == 0:
            # The signal never varies in-distribution: any tiny bar works.
            candidate_alphas = [1e-12]
        else:
            quantiles = np.quantile(positive, _CANDIDATE_QUANTILES)
            candidate_alphas = sorted(set(float(q) for q in quantiles))
            candidate_alphas.append(float(positive.max()) * 2.0)
    candidates: list[tuple[float, float]] = []
    for alpha in candidate_alphas:
        controller = SafetyController(
            learned=learned,
            default=default,
            signal=signal,
            trigger=VarianceTrigger(alpha=alpha, k=k, l=l),
        )
        qoe = evaluate_mean_qoe(
            controller, manifest, traces, qoe_metric=qoe_metric, seed=seed
        )
        candidates.append((float(alpha), qoe))
    tolerance = max(tolerance_fraction * abs(target_qoe), 1.0)
    qualifying = [
        pair for pair in candidates if abs(pair[1] - target_qoe) <= tolerance
    ]
    if qualifying:
        best_alpha, best_qoe = min(qualifying, key=lambda pair: pair[0])
    else:
        best_alpha, best_qoe = min(
            candidates, key=lambda pair: (abs(pair[1] - target_qoe), -pair[0])
        )
    return CalibrationResult(
        alpha=best_alpha,
        target_qoe=float(target_qoe),
        achieved_qoe=float(best_qoe),
        candidates=candidates,
    )
