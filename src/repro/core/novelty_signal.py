"""``U_S``: state uncertainty as novelty detection (Section 2.4, 3.1).

The paper's recipe: "at each time step t, the mean and standard deviation
of the 10 most recent network throughputs are calculated, and a sample
consisting of the k latest [mean, deviation] pairs is fed into the
(trained) OC-SVM model" — k = 5 for the empirical distributions, k = 30
for the synthetic ones.  The OC-SVM answers in/out-of-distribution per
step; the l-consecutive rule in :mod:`repro.core.thresholding` decides
when to default.

:func:`throughput_window_samples` builds the same representation from
training sessions, producing the OC-SVM's training set.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from repro.core.signals import SIGNALS, UncertaintySignal
from repro.errors import SafetyError, SimulationError
from repro.novelty.base import NoveltyDetector
from repro.util.stats import mean_std_window

__all__ = ["StateNoveltySignal", "throughput_window_samples"]

_DEFAULT_THROUGHPUT_WINDOW = 10

#: Row 2 of the ABR observation matrix is measured throughput normalized
#: by this constant.  It restates the observation contract of
#: ``repro.abr.state`` (``_THROUGHPUT_NORM_MBPS``) so the core layer can
#: read the stream without importing the ABR substrate; a sync test
#: asserts the two constants (and the extracted values) agree.
_THROUGHPUT_NORM_MBPS = 8.0
_THROUGHPUT_ROW = 2


def _latest_throughput_mbps(observation: np.ndarray) -> float:
    """The newest measured throughput in an ABR observation (Mbit/s)."""
    observation = np.asarray(observation, dtype=float)
    if observation.ndim != 2:
        raise SimulationError(
            f"expected a 2-d observation matrix, got shape {observation.shape}"
        )
    return float(observation[_THROUGHPUT_ROW, -1] * _THROUGHPUT_NORM_MBPS)


def throughput_window_samples(
    throughput_series: list[np.ndarray] | tuple[np.ndarray, ...],
    k: int,
    throughput_window: int = _DEFAULT_THROUGHPUT_WINDOW,
    max_samples: int | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Build OC-SVM samples from per-session throughput sequences.

    For every time step with a full history, compute the ``[mean, std]``
    of the last *throughput_window* throughputs, then stack the *k* latest
    pairs into one ``2k``-dimensional sample.  Sessions shorter than
    ``k`` usable steps contribute nothing.

    *max_samples* optionally subsamples the result (uniformly, with *rng*)
    to bound OC-SVM training cost.
    """
    if k <= 0:
        raise SafetyError(f"k must be positive, got {k}")
    if throughput_window <= 0:
        raise SafetyError(
            f"throughput_window must be positive, got {throughput_window}"
        )
    samples: list[np.ndarray] = []
    for series in throughput_series:
        series = np.asarray(series, dtype=float).ravel()
        # Only full windows: partial-history statistics at session start
        # have a different signature (tiny std) and would either pollute
        # the learned region or be sacrificed as training outliers,
        # making every fresh session's first windows false alarms.
        pairs = [
            mean_std_window(series[: t + 1], throughput_window)
            for t in range(throughput_window - 1, series.size)
        ]
        if not pairs:
            continue
        pairs_arr = np.asarray(pairs)
        for end in range(k, len(pairs) + 1):
            samples.append(pairs_arr[end - k : end].ravel())
    if not samples:
        raise SafetyError(
            f"no training samples: sessions too short for k={k} windows"
        )
    stacked = np.stack(samples)
    if max_samples is not None and stacked.shape[0] > max_samples:
        rng = rng if rng is not None else np.random.default_rng(0)
        chosen = rng.choice(stacked.shape[0], size=max_samples, replace=False)
        stacked = stacked[np.sort(chosen)]
    return stacked


@SIGNALS.register("U_S")
class StateNoveltySignal(UncertaintySignal):
    """Per-step OOD flag from a fitted novelty detector.

    Emits 1.0 when the current window of throughput statistics is an
    outlier with respect to the training distribution, else 0.0.  During
    warm-up (before *k* windows have been observed) it emits 0.0 — the
    paper's system likewise cannot flag before it has a full sample.

    Any fitted :class:`~repro.novelty.base.NoveltyDetector` works as the
    backend (the registry in :mod:`repro.core.signals` lists them under
    ``novelty/*``); the paper's choice is the one-class SVM.  The signal
    reads the latest measured throughput from the ABR observation row by
    default; *throughput_of* swaps that extraction for other domains.
    """

    binary = True

    def __init__(
        self,
        detector: NoveltyDetector,
        bitrates_kbps: np.ndarray,
        k: int,
        throughput_window: int = _DEFAULT_THROUGHPUT_WINDOW,
        throughput_of: Callable[[np.ndarray], float] | None = None,
    ) -> None:
        if k <= 0:
            raise SafetyError(f"k must be positive, got {k}")
        if throughput_window <= 0:
            raise SafetyError(
                f"throughput_window must be positive, got {throughput_window}"
            )
        self.detector = detector
        self.bitrates_kbps = np.asarray(bitrates_kbps, dtype=float)
        self.k = k
        self.throughput_window = throughput_window
        self.throughput_of = throughput_of or _latest_throughput_mbps
        self._throughputs: deque[float] = deque(maxlen=max(throughput_window, 1))
        self._pairs: deque[tuple[float, float]] = deque(maxlen=k)

    def reset(self) -> None:
        self._throughputs.clear()
        self._pairs.clear()

    def state_dict(self) -> dict:
        return {
            "throughputs": [float(v) for v in self._throughputs],
            "pairs": [[float(m), float(s)] for m, s in self._pairs],
        }

    def load_state_dict(self, state: dict) -> None:
        throughputs = [float(v) for v in state["throughputs"]]
        pairs = [(float(m), float(s)) for m, s in state["pairs"]]
        if len(throughputs) > self._throughputs.maxlen:
            raise SafetyError(
                f"restored {len(throughputs)} throughputs into a window "
                f"of {self._throughputs.maxlen}"
            )
        if len(pairs) > self.k:
            raise SafetyError(
                f"restored {len(pairs)} pairs into a window of {self.k}"
            )
        self._throughputs = deque(throughputs, maxlen=self._throughputs.maxlen)
        self._pairs = deque(pairs, maxlen=self.k)

    def measure(self, observation: np.ndarray) -> float:
        latest = self.throughput_of(observation)
        if latest > 0:
            self._throughputs.append(latest)
        # Warm-up: wait for a full throughput window before producing
        # [mean, std] pairs, matching the training-sample construction.
        if len(self._throughputs) < self.throughput_window:
            return 0.0
        self._pairs.append(
            mean_std_window(np.asarray(self._throughputs), self.throughput_window)
        )
        if len(self._pairs) < self.k:
            return 0.0
        sample = np.asarray(self._pairs).ravel()
        return 1.0 if self.detector.is_outlier(sample) else 0.0
