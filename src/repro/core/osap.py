"""The paper's safety-assurance parameters (Section 3.1).

:class:`SafetyConfig` collects every knob of the three OSAP schemes —
ensemble size and trimming, the l-consecutive and k-window-variance
trigger lengths, the OC-SVM window sizes and nu — and validates them at
construction, so an invalid combination fails loudly at configuration
time instead of deep inside calibration or a training run.

Suite *construction* — training the ensembles and wiring the three
safety-enhanced controllers — is domain work and lives in
:mod:`repro.abr.suite` (:func:`repro.abr.suite.build_safety_suite`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.signals import DETECTORS, make_detector
from repro.errors import ConfigError

__all__ = ["SafetyConfig"]


@dataclass(frozen=True)
class SafetyConfig:
    """Parameters of the paper's safety-assurance schemes (Section 3.1)."""

    ensemble_size: int = 5
    trim: int = 2
    l: int = 3
    variance_k: int = 5
    ocsvm_k_empirical: int = 5
    ocsvm_k_synthetic: int = 30
    throughput_window: int = 10
    ocsvm_nu: float = 0.10
    max_ocsvm_samples: int = 1500
    allow_revert: bool = False
    #: Registry key of the ``U_S`` novelty backend (see
    #: :data:`repro.core.signals.DETECTORS`).  The paper's choice is the
    #: one-class SVM; the orphaned detectors (``novelty/kde``,
    #: ``novelty/knn``, ``novelty/mahalanobis``) drop in here.
    detector: str = "novelty/ocsvm"

    def __post_init__(self) -> None:
        if self.ensemble_size < 3:
            raise ConfigError(
                f"ensemble_size must be >= 3, got {self.ensemble_size}"
            )
        if self.trim < 0:
            raise ConfigError(f"trim must be >= 0, got {self.trim}")
        if self.trim >= self.ensemble_size:
            raise ConfigError(
                f"trim={self.trim} must be < ensemble_size={self.ensemble_size}"
            )
        if self.trim > self.ensemble_size - 2:
            raise ConfigError(
                f"trim={self.trim} must leave >= 2 of {self.ensemble_size} members"
            )
        if self.l < 1:
            raise ConfigError(f"l must be >= 1, got {self.l}")
        if self.variance_k < 1:
            raise ConfigError(f"variance_k must be >= 1, got {self.variance_k}")
        if self.variance_k < 2:
            raise ConfigError(
                f"variance_k must be >= 2 to define a variance, got "
                f"{self.variance_k}"
            )
        if self.ocsvm_k_empirical < 1 or self.ocsvm_k_synthetic < 1:
            raise ConfigError("OC-SVM window lengths must be >= 1")
        if self.throughput_window < 1:
            raise ConfigError(
                f"throughput_window must be >= 1, got {self.throughput_window}"
            )
        if not 0.0 < self.ocsvm_nu <= 1.0:
            raise ConfigError(f"ocsvm_nu must be in (0, 1], got {self.ocsvm_nu}")
        if self.max_ocsvm_samples < 10:
            raise ConfigError(
                f"max_ocsvm_samples must be >= 10, got {self.max_ocsvm_samples}"
            )
        if self.detector not in DETECTORS:
            raise ConfigError(
                f"unknown detector {self.detector!r}; expected one of "
                f"{DETECTORS.keys()}"
            )

    def ocsvm_k(self, is_synthetic: bool) -> int:
        """The paper uses k=5 for empirical and k=30 for synthetic data."""
        return self.ocsvm_k_synthetic if is_synthetic else self.ocsvm_k_empirical

    def build_detector(self):
        """Construct the configured (unfitted) ``U_S`` novelty backend.

        The OC-SVM takes this config's ``nu``; the drop-in detectors use
        their own defaults.
        """
        if self.detector == "novelty/ocsvm":
            return make_detector(self.detector, nu=self.ocsvm_nu)
        return make_detector(self.detector)
