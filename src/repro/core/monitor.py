"""Session telemetry: record what the safety machinery saw and did.

A production safety net must be auditable — when the system defaults, the
operator asks *why now?*.  :class:`SignalRecorder` wraps any uncertainty
signal and logs its per-step values; :class:`MonitoredController` extends
the safety controller with a full decision log; and
:func:`explain_default` renders the moments around a hand-off as text.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.controller import SafetyController
from repro.core.signals import UncertaintySignal
from repro.core.thresholding import DefaultTrigger
from repro.errors import SafetyError
from repro.mdp.interfaces import Policy
from repro.util.tables import render_table

__all__ = [
    "DecisionRecord",
    "SignalRecorder",
    "MonitoredController",
    "explain_default",
]


@dataclass(frozen=True)
class DecisionRecord:
    """One decision step as the safety controller saw it."""

    step: int
    signal_value: float
    trigger_fired: bool
    defaulted: bool
    action: int


class SignalRecorder(UncertaintySignal):
    """A pass-through wrapper that logs every signal value."""

    def __init__(self, inner: UncertaintySignal) -> None:
        self.inner = inner
        self.binary = inner.binary
        self.values: list[float] = []

    def reset(self) -> None:
        self.inner.reset()
        self.values.clear()

    def measure(self, observation: np.ndarray) -> float:
        value = self.inner.measure(observation)
        self.values.append(float(value))
        return value


class MonitoredController(SafetyController):
    """A :class:`SafetyController` that keeps a per-decision log."""

    def __init__(
        self,
        learned: Policy,
        default: Policy,
        signal: UncertaintySignal,
        trigger: DefaultTrigger,
        allow_revert: bool = False,
        name: str = "monitored",
    ) -> None:
        recorder = SignalRecorder(signal)
        super().__init__(
            learned=learned,
            default=default,
            signal=recorder,
            trigger=trigger,
            allow_revert=allow_revert,
            name=name,
        )
        self.recorder = recorder
        self.log: list[DecisionRecord] = []

    def reset(self) -> None:
        super().reset()
        self.log = []

    def act(self, observation: np.ndarray, rng: np.random.Generator) -> int:
        was_defaulted = self._defaulted
        action = super().act(observation, rng)
        self.log.append(
            DecisionRecord(
                step=self.total_steps - 1,
                signal_value=self.recorder.values[-1],
                trigger_fired=self._defaulted and not was_defaulted,
                defaulted=self.last_decision_defaulted,
                action=action,
            )
        )
        return action

    @property
    def handoff_step(self) -> int | None:
        """The decision index at which control first moved to the default
        policy, or ``None`` if it never did."""
        for record in self.log:
            if record.defaulted:
                return record.step
        return None


def explain_default(
    controller: MonitoredController, context_steps: int = 5
) -> str:
    """Render the decisions around the hand-off as a monospace table.

    Raises :class:`SafetyError` when the controller never defaulted
    (there is nothing to explain).
    """
    handoff = controller.handoff_step
    if handoff is None:
        raise SafetyError("controller never defaulted in this session")
    start = max(handoff - context_steps, 0)
    end = min(handoff + context_steps + 1, len(controller.log))
    rows = []
    for record in controller.log[start:end]:
        marker = "<< hand-off" if record.step == handoff else ""
        rows.append(
            [
                record.step,
                round(record.signal_value, 5),
                "yes" if record.defaulted else "no",
                record.action,
                marker,
            ]
        )
    header = (
        f"defaulted at decision {handoff} "
        f"(of {len(controller.log)}; "
        f"{controller.default_fraction:.0%} of session under default)\n"
    )
    return header + render_table(
        ["step", "signal", "defaulted", "action", ""], rows
    )
