"""The streaming safety monitor: OSAP as a step-stream state machine.

This module is the single home of the paper's online decision rule.
:class:`SafetyMonitor` consumes one observation per decision step
(:meth:`~SafetyMonitor.observe`) and answers with a
:class:`MonitorDecision` — measure the uncertainty signal, fold it into
the trigger, and track the default/recover mode — without knowing
anything about policies, environments, or sessions.  Because its full
state (signal windows, trigger counters, mode, step counters) is
serializable (:meth:`~SafetyMonitor.state_dict` /
:meth:`~SafetyMonitor.load_state_dict`), a monitored session can be
suspended, shipped to another worker, and resumed with bitwise-identical
subsequent decisions.

:class:`SafetyController` is the policy-facing adapter: the same object
the paper calls the safety-enhanced agent — ``learned`` inside its
comfort zone, ``default`` outside — now a thin wrapper that lets the
monitor decide and the chosen policy act.  (It is re-exported from
:mod:`repro.core.controller` for backward compatibility; the bookkeeping
lives only here.)

The telemetry layer rides on top: :class:`SignalRecorder` logs per-step
signal values, :class:`MonitoredController` keeps a full decision log,
and :func:`explain_default` renders the moments around a hand-off.
"""

from __future__ import annotations

import copy
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.signals import UncertaintySignal
from repro.core.thresholding import DefaultTrigger
from repro.errors import SafetyError
from repro.mdp.interfaces import Policy
from repro.perf import fast_paths_enabled
from repro.util.tables import render_table

__all__ = [
    "DecisionRecord",
    "MonitorDecision",
    "MonitorTable",
    "MonitoredController",
    "SafetyController",
    "SafetyMonitor",
    "SignalRecorder",
    "explain_default",
]

#: Schema version of the monitor state mapping (bump on layout changes).
_STATE_VERSION = 1


@dataclass(frozen=True)
class MonitorDecision:
    """What the monitor concluded about one decision step."""

    #: 0-based decision index within the session.
    step: int
    #: The measured signal value; NaN when the sticky fast path skipped
    #: measuring (the value could not change this session's decisions).
    signal_value: float
    #: Whether the trigger fired at this step.
    fired: bool
    #: The mode after folding this step in: decide with the default policy?
    defaulted: bool
    #: True exactly at the learned-to-default hand-off step.
    handoff: bool
    #: True exactly at a default-to-learned recovery step (revertible
    #: monitors only).
    recovered: bool

    @property
    def mode(self) -> str:
        """``"default"`` or ``"learned"`` — who decides this step."""
        return "default" if self.defaulted else "learned"


class SafetyMonitor:
    """The OSAP decision rule over a step stream, free of any domain.

    Feed it one observation per decision step; it measures the
    uncertainty signal, updates the trigger, and tracks whether the
    system should be deciding with the default policy.  By default the
    hand-off is *sticky* for the rest of the session, matching the
    paper's "defaulting" language (the enhanced system "defaults to
    BB"); ``allow_revert=True`` switches back as soon as the trigger
    stops firing, for the extension experiments.
    """

    def __init__(
        self,
        signal: UncertaintySignal,
        trigger: DefaultTrigger,
        allow_revert: bool = False,
        name: str = "monitor",
    ) -> None:
        self.signal = signal
        self.trigger = trigger
        self.allow_revert = allow_revert
        self.name = name
        self._defaulted = False
        self.last_decision_defaulted = False
        self.default_steps = 0
        self.total_steps = 0
        self._last_decision: MonitorDecision | None = None
        # Recent signal values for the observability default-event; only
        # materialized while metric collection is on.
        self._recent_signals: deque[float] | None = None

    def reset(self) -> None:
        """Reset the signal, the trigger, and all session state."""
        self.signal.reset()
        self.trigger.reset()
        self._defaulted = False
        self.last_decision_defaulted = False
        self.default_steps = 0
        self.total_steps = 0
        self._last_decision = None
        self._recent_signals = None

    @property
    def defaulted(self) -> bool:
        """Current mode: is the default policy deciding?"""
        return self._defaulted

    @property
    def last_decision(self) -> MonitorDecision | None:
        """The most recent decision, or ``None`` before the first step."""
        return self._last_decision

    @property
    def default_fraction(self) -> float:
        """Fraction of this session's decisions made in default mode."""
        if self.total_steps == 0:
            return 0.0
        return self.default_steps / self.total_steps

    def will_measure(self) -> bool:
        """Whether the next :meth:`observe` call will measure the signal.

        False only on the sticky fast path: once defaulted without
        revert, the signal can never change another decision this
        session, so measuring is skipped while fast paths are on.  The
        serve engine uses this to exclude settled sessions from its
        batched forwards.
        """
        return not (
            self._defaulted and not self.allow_revert and fast_paths_enabled()
        )

    def observe(
        self, observation: np.ndarray, signal_value: float | None = None
    ) -> MonitorDecision:
        """Fold one decision step in and say who should decide it.

        *signal_value*, when given, is used instead of measuring the
        signal — for callers that computed the identical value through a
        batched path (the serve engine).  Only valid for stateless
        signals: a stateful signal skipped this way would desynchronize
        from the stream.
        """
        if not self.will_measure():
            # Sticky hand-off: the signal can never change another decision
            # this session, so skip measuring it.  QoE and default_fraction
            # are untouched; only the (reset-per-session) signal/trigger
            # internals stop advancing.
            self.last_decision_defaulted = True
            self.total_steps += 1
            self.default_steps += 1
            obs.inc("controller.decisions", controller=self.name, mode="default")
            decision = MonitorDecision(
                step=self.total_steps - 1,
                signal_value=float("nan"),
                fired=False,
                defaulted=True,
                handoff=False,
                recovered=False,
            )
            self._last_decision = decision
            return decision
        if signal_value is None:
            value = self.signal.measure(observation)
        else:
            value = float(signal_value)
        fired = self.trigger.update(value)
        was_defaulted = self._defaulted
        if self.allow_revert:
            self._defaulted = fired
        else:
            self._defaulted = self._defaulted or fired
        self.last_decision_defaulted = self._defaulted
        self.total_steps += 1
        if self._defaulted:
            self.default_steps += 1
        if obs.enabled():
            self._observe_decision(value, was_defaulted)
        decision = MonitorDecision(
            step=self.total_steps - 1,
            signal_value=float(value),
            fired=bool(fired),
            defaulted=self._defaulted,
            handoff=self._defaulted and not was_defaulted,
            recovered=was_defaulted and not self._defaulted,
        )
        self._last_decision = decision
        return decision

    def _observe_decision(self, value: float, was_defaulted: bool) -> None:
        """Record this decision's signal and mode, plus hand-off events
        carrying the window of signal values that led to them.  Only
        called while collection is on; never touches control flow."""
        if self._recent_signals is None:
            window = max(int(getattr(self.trigger, "k", 1)), 1)
            self._recent_signals = deque(maxlen=window)
        self._recent_signals.append(float(value))
        obs.observe("controller.signal", float(value), controller=self.name)
        obs.inc(
            "controller.decisions",
            controller=self.name,
            mode="default" if self._defaulted else "learned",
        )
        if self._defaulted and not was_defaulted:
            obs.event(
                "controller.default",
                controller=self.name,
                step=self.total_steps,
                signal=float(value),
                window=list(self._recent_signals),
            )
        elif was_defaulted and not self._defaulted:
            obs.event(
                "controller.recover",
                controller=self.name,
                step=self.total_steps,
                signal=float(value),
            )

    def fork(self) -> "SafetyMonitor":
        """A fresh monitor over this monitor's scheme, with no session state.

        The signal is shared when stateless (one ensemble in memory can
        answer any number of concurrent sessions) and deep-copied
        otherwise, so each stateful session keeps its own rolling
        windows; the trigger is always deep-copied.  This is how the
        serve engine and the service layer mint per-session monitors
        from one configured prototype.
        """
        signal = self.signal if self.signal.stateless else copy.deepcopy(self.signal)
        return SafetyMonitor(
            signal,
            copy.deepcopy(self.trigger),
            allow_revert=self.allow_revert,
            name=self.name,
        )

    def state_dict(self) -> dict:
        """The monitor's full session state as a JSON-able mapping.

        Covers the mode, the step counters, and the signal's and
        trigger's rolling windows — everything needed so that a restored
        monitor produces bitwise-identical decisions on the same
        observation tail.
        """
        return {
            "version": _STATE_VERSION,
            "name": self.name,
            "allow_revert": bool(self.allow_revert),
            "defaulted": bool(self._defaulted),
            "last_decision_defaulted": bool(self.last_decision_defaulted),
            "default_steps": int(self.default_steps),
            "total_steps": int(self.total_steps),
            "signal": self.signal.state_dict(),
            "trigger": self.trigger.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore session state captured by :meth:`state_dict`.

        The monitor must already be built with the same signal/trigger
        configuration; only *session* state travels in the mapping.
        """
        version = state.get("version")
        if version != _STATE_VERSION:
            raise SafetyError(
                f"monitor state version {version!r} is not {_STATE_VERSION}"
            )
        if bool(state["allow_revert"]) != bool(self.allow_revert):
            raise SafetyError(
                "cannot restore state captured with "
                f"allow_revert={state['allow_revert']} into a monitor with "
                f"allow_revert={self.allow_revert}"
            )
        self._defaulted = bool(state["defaulted"])
        self.last_decision_defaulted = bool(state["last_decision_defaulted"])
        self.default_steps = int(state["default_steps"])
        self.total_steps = int(state["total_steps"])
        self.signal.load_state_dict(state["signal"])
        self.trigger.load_state_dict(state["trigger"])
        self._last_decision = None
        self._recent_signals = None


class MonitorTable:
    """A vectorized bank of monitor phases: OSAP over rows, not objects.

    The serve engine's continuous-batching kernel keeps one *row* of
    monitor state per live session slot — mode, step counters, and the
    trigger's per-row state (a
    :class:`~repro.core.thresholding.TriggerTable`) — and folds a whole
    wave of signal measurements in with a handful of array operations.
    Row semantics are exactly :class:`SafetyMonitor`'s: the same trigger
    decisions, the same sticky/revert mode fold, the same counters, and
    equivalent observability output (aggregated counters plus per-row
    signal samples and hand-off events when collection is on).

    The bank does not measure signals itself — callers batch the
    measurements (that is the point) and hand the values to
    :meth:`observe_measured`; rows on the sticky fast path are advanced
    through :meth:`observe_sticky` without values, mirroring
    :meth:`SafetyMonitor.observe`'s skip-measure branch.
    """

    def __init__(
        self,
        capacity: int,
        trigger_table,
        allow_revert: bool = False,
        name: str = "monitor",
        signal_window: int = 1,
    ) -> None:
        if capacity < 1:
            raise SafetyError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.trigger_table = trigger_table
        self.allow_revert = allow_revert
        self.name = name
        self._signal_window = max(int(signal_window), 1)
        self.defaulted = np.zeros(capacity, dtype=bool)
        self.total_steps = np.zeros(capacity, dtype=np.int64)
        self.default_steps = np.zeros(capacity, dtype=np.int64)
        # Per-row recent-signal windows for the observability default
        # event; materialized only while collection is on.
        self._recent: list[deque | None] = [None] * capacity

    def admit(self, row: int) -> None:
        """Reset *row* for a fresh session (mode, counters, trigger)."""
        self.defaulted[row] = False
        self.total_steps[row] = 0
        self.default_steps[row] = 0
        self._recent[row] = None
        self.trigger_table.reset_rows(np.array([row]))

    def sticky_rows(self, rows: np.ndarray) -> np.ndarray:
        """Of *rows*, those whose next step skips measuring.

        The vectorized form of ``not SafetyMonitor.will_measure()``:
        defaulted rows of a non-revertible bank are settled for the rest
        of their session.  (The kernel only runs with fast paths on, so
        the global switch is not re-checked per wave.)
        """
        if self.allow_revert:
            return rows[:0]
        return rows[self.defaulted[rows]]

    def observe_sticky(self, rows: np.ndarray, waves: int = 1) -> None:
        """Advance settled rows *waves* steps without measuring.

        Mirrors the scalar sticky fast path: both counters advance and
        the per-decision counter records default-mode decisions.  A
        settled row's bookkeeping is the same every wave, so the engine
        batches several waves of it into one call; the end-of-session
        counters and aggregate metrics are identical to crediting each
        wave individually.
        """
        self.total_steps[rows] += waves
        self.default_steps[rows] += waves
        obs.inc(
            "controller.decisions",
            amount=float(len(rows) * waves),
            controller=self.name,
            mode="default",
        )

    def observe_measured(self, rows: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Fold one measured signal value per row; returns the new
        per-row defaulted mask (aligned with *rows*).

        The fold is the scalar rule vectorized: trigger rows update
        first, then ``defaulted`` becomes ``fired`` (revertible) or
        ``defaulted | fired`` (sticky), and the counters advance.
        """
        fired = self.trigger_table.update_rows(rows, values)
        was = self.defaulted[rows]
        if self.allow_revert:
            now = fired
        else:
            now = was | fired
        self.defaulted[rows] = now
        self.total_steps[rows] += 1
        self.default_steps[rows] += now
        if obs.enabled():
            self._observe_rows(rows, values, was, now)
        return now

    def default_fraction(self, row: int) -> float:
        """Fraction of *row*'s session decided in default mode."""
        total = int(self.total_steps[row])
        if total == 0:
            return 0.0
        return int(self.default_steps[row]) / total

    def _observe_rows(
        self,
        rows: np.ndarray,
        values: np.ndarray,
        was: np.ndarray,
        now: np.ndarray,
    ) -> None:
        """Emit the same observability stream the scalar monitors would:
        per-row signal samples, per-mode decision counts (aggregated),
        and hand-off/recover events with their signal windows."""
        defaults = int(np.count_nonzero(now))
        if defaults:
            obs.inc(
                "controller.decisions",
                amount=float(defaults),
                controller=self.name,
                mode="default",
            )
        if defaults < len(rows):
            obs.inc(
                "controller.decisions",
                amount=float(len(rows) - defaults),
                controller=self.name,
                mode="learned",
            )
        for position, row in enumerate(rows.tolist()):
            value = float(values[position])
            recent = self._recent[row]
            if recent is None:
                recent = deque(maxlen=self._signal_window)
                self._recent[row] = recent
            recent.append(value)
            obs.observe("controller.signal", value, controller=self.name)
            if now[position] and not was[position]:
                obs.event(
                    "controller.default",
                    controller=self.name,
                    step=int(self.total_steps[row]),
                    signal=value,
                    window=list(recent),
                )
            elif was[position] and not now[position]:
                obs.event(
                    "controller.recover",
                    controller=self.name,
                    step=int(self.total_steps[row]),
                    signal=value,
                )


class SafetyController:
    """A policy that is ``learned`` inside its comfort zone, ``default``
    outside — the monitor decides, the chosen policy acts."""

    def __init__(
        self,
        learned: Policy,
        default: Policy,
        signal: UncertaintySignal,
        trigger: DefaultTrigger,
        allow_revert: bool = False,
        name: str = "safe",
    ) -> None:
        if learned is default:
            raise SafetyError("learned and default policies must be distinct")
        self.learned = learned
        self.default = default
        self.monitor = SafetyMonitor(
            signal, trigger, allow_revert=allow_revert, name=name
        )

    # The monitor owns every piece of OSAP bookkeeping; these delegating
    # accessors keep the controller's historical surface intact.
    @property
    def signal(self) -> UncertaintySignal:
        return self.monitor.signal

    @property
    def trigger(self) -> DefaultTrigger:
        return self.monitor.trigger

    @property
    def allow_revert(self) -> bool:
        return self.monitor.allow_revert

    @property
    def name(self) -> str:
        return self.monitor.name

    @name.setter
    def name(self, value: str) -> None:
        self.monitor.name = value

    @property
    def _defaulted(self) -> bool:
        return self.monitor.defaulted

    @property
    def last_decision_defaulted(self) -> bool:
        return self.monitor.last_decision_defaulted

    @property
    def default_steps(self) -> int:
        return self.monitor.default_steps

    @property
    def total_steps(self) -> int:
        return self.monitor.total_steps

    @property
    def default_fraction(self) -> float:
        """Fraction of this session's decisions made by the default policy."""
        return self.monitor.default_fraction

    def reset(self) -> None:
        """Reset the wrapped policies and the monitor."""
        self.learned.reset()
        self.default.reset()
        self.monitor.reset()

    def act(self, observation: np.ndarray, rng: np.random.Generator) -> int:
        """One decision: measure uncertainty, maybe default, then act."""
        decision = self.monitor.observe(observation)
        policy = self.default if decision.defaulted else self.learned
        return policy.act(observation, rng)

    def action_probabilities(self, observation: np.ndarray) -> np.ndarray:
        """The active policy's action distribution.

        Reads the monitor's current mode without advancing the signal —
        only :meth:`act` consumes a decision step, so rollout bookkeeping
        that inspects probabilities does not double-count.
        """
        policy = self.default if self.monitor.defaulted else self.learned
        return policy.action_probabilities(observation)


@dataclass(frozen=True)
class DecisionRecord:
    """One decision step as the safety controller saw it."""

    step: int
    signal_value: float
    trigger_fired: bool
    defaulted: bool
    action: int


class SignalRecorder(UncertaintySignal):
    """A pass-through wrapper that logs every signal value."""

    def __init__(self, inner: UncertaintySignal) -> None:
        self.inner = inner
        self.binary = inner.binary
        self.values: list[float] = []

    def reset(self) -> None:
        self.inner.reset()
        self.values.clear()

    def measure(self, observation: np.ndarray) -> float:
        value = self.inner.measure(observation)
        self.values.append(float(value))
        return value

    def state_dict(self) -> dict:
        return {
            "inner": self.inner.state_dict(),
            "values": [float(v) for v in self.values],
        }

    def load_state_dict(self, state: dict) -> None:
        self.inner.load_state_dict(state["inner"])
        self.values = [float(v) for v in state["values"]]


class MonitoredController(SafetyController):
    """A :class:`SafetyController` that keeps a per-decision log."""

    def __init__(
        self,
        learned: Policy,
        default: Policy,
        signal: UncertaintySignal,
        trigger: DefaultTrigger,
        allow_revert: bool = False,
        name: str = "monitored",
    ) -> None:
        recorder = SignalRecorder(signal)
        super().__init__(
            learned=learned,
            default=default,
            signal=recorder,
            trigger=trigger,
            allow_revert=allow_revert,
            name=name,
        )
        self.recorder = recorder
        self.log: list[DecisionRecord] = []

    def reset(self) -> None:
        super().reset()
        self.log = []

    def act(self, observation: np.ndarray, rng: np.random.Generator) -> int:
        was_defaulted = self._defaulted
        action = super().act(observation, rng)
        self.log.append(
            DecisionRecord(
                step=self.total_steps - 1,
                signal_value=self.recorder.values[-1],
                trigger_fired=self._defaulted and not was_defaulted,
                defaulted=self.last_decision_defaulted,
                action=action,
            )
        )
        return action

    @property
    def handoff_step(self) -> int | None:
        """The decision index at which control first moved to the default
        policy, or ``None`` if it never did."""
        for record in self.log:
            if record.defaulted:
                return record.step
        return None


def explain_default(
    controller: MonitoredController, context_steps: int = 5
) -> str:
    """Render the decisions around the hand-off as a monospace table.

    Raises :class:`SafetyError` when the controller never defaulted
    (there is nothing to explain).
    """
    handoff = controller.handoff_step
    if handoff is None:
        raise SafetyError("controller never defaulted in this session")
    start = max(handoff - context_steps, 0)
    end = min(handoff + context_steps + 1, len(controller.log))
    rows = []
    for record in controller.log[start:end]:
        marker = "<< hand-off" if record.step == handoff else ""
        rows.append(
            [
                record.step,
                round(record.signal_value, 5),
                "yes" if record.defaulted else "no",
                record.action,
                marker,
            ]
        )
    header = (
        f"defaulted at decision {handoff} "
        f"(of {len(controller.log)}; "
        f"{controller.default_fraction:.0%} of session under default)\n"
    )
    return header + render_table(
        ["step", "signal", "defaulted", "action", ""], rows
    )
