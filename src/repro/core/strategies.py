"""Alternative thresholding strategies (paper future work, Section 5).

"Natural directions for future research include ... exploring the
implications for the performance of different thresholding strategies."
The paper's own rules live in :mod:`repro.core.thresholding` (k-window
variance + l-consecutive); this module adds two classical alternatives
behind the same :class:`~repro.core.thresholding.DefaultTrigger` interface:

* :class:`EWMATrigger` — exponential smoothing of the raw signal level
  against a bar; memory decays geometrically instead of dropping out of a
  window, so brief spikes are forgiven but sustained elevation fires.
* :class:`CusumTrigger` — the CUSUM change-point detector: accumulates
  evidence that the signal's mean has risen above its in-distribution
  level; provably detects persistent small shifts that per-step rules
  miss, at the cost of a tunable drift allowance.
* :class:`HysteresisTrigger` — distinct on/off bars, for revertible
  controllers: fires above the high bar and only clears below the low
  bar, preventing flapping near the threshold.

The strategy-ablation benchmark compares all of them under the same
signal and calibration budget.
"""

from __future__ import annotations

import numpy as np

from repro.core.signals import TRIGGERS
from repro.core.thresholding import DefaultTrigger
from repro.errors import SafetyError

__all__ = ["EWMATrigger", "CusumTrigger", "HysteresisTrigger"]


@TRIGGERS.register("ewma")
class EWMATrigger(DefaultTrigger):
    """Fire when the exponentially smoothed signal exceeds ``bar``."""

    def __init__(self, bar: float, alpha: float = 0.3) -> None:
        if bar < 0:
            raise SafetyError(f"bar must be >= 0, got {bar}")
        if not 0.0 < alpha <= 1.0:
            raise SafetyError(f"alpha must be in (0, 1], got {alpha}")
        self.bar = bar
        self.alpha = alpha
        self._level: float | None = None

    def reset(self) -> None:
        self._level = None

    @property
    def level(self) -> float:
        """The current smoothed signal level."""
        return self._level if self._level is not None else 0.0

    def update(self, signal_value: float) -> bool:
        if not np.isfinite(signal_value):
            raise SafetyError(f"non-finite signal value {signal_value}")
        if self._level is None:
            self._level = float(signal_value)
        else:
            self._level = (
                self.alpha * float(signal_value)
                + (1.0 - self.alpha) * self._level
            )
        return self._level > self.bar

    def state_dict(self) -> dict:
        return {"level": None if self._level is None else float(self._level)}

    def load_state_dict(self, state: dict) -> None:
        level = state["level"]
        self._level = None if level is None else float(level)


@TRIGGERS.register("cusum")
class CusumTrigger(DefaultTrigger):
    """One-sided CUSUM on the signal stream.

    Maintains ``S_t = max(0, S_{t-1} + (x_t - drift))`` and fires when
    ``S_t`` exceeds ``threshold``.  ``drift`` should be set a little above
    the signal's in-distribution mean: in-distribution excursions then
    bleed off, while a persistent OOD elevation accumulates linearly and
    must eventually fire.
    """

    def __init__(self, threshold: float, drift: float) -> None:
        if threshold <= 0:
            raise SafetyError(f"threshold must be positive, got {threshold}")
        if drift < 0:
            raise SafetyError(f"drift must be >= 0, got {drift}")
        self.threshold = threshold
        self.drift = drift
        self._statistic = 0.0

    def reset(self) -> None:
        self._statistic = 0.0

    @property
    def statistic(self) -> float:
        """The accumulated CUSUM statistic."""
        return self._statistic

    def update(self, signal_value: float) -> bool:
        if not np.isfinite(signal_value):
            raise SafetyError(f"non-finite signal value {signal_value}")
        self._statistic = max(
            0.0, self._statistic + float(signal_value) - self.drift
        )
        return self._statistic > self.threshold

    def state_dict(self) -> dict:
        return {"statistic": float(self._statistic)}

    def load_state_dict(self, state: dict) -> None:
        self._statistic = float(state["statistic"])


@TRIGGERS.register("hysteresis")
class HysteresisTrigger(DefaultTrigger):
    """Two-bar rule: fire above ``high``, clear only below ``low``.

    Meaningful for controllers with ``allow_revert=True``: a single bar
    makes the controller flap when the signal hovers near it; hysteresis
    requires the signal to genuinely recover before control returns to
    the learned policy.
    """

    def __init__(self, high: float, low: float) -> None:
        if not 0.0 <= low <= high:
            raise SafetyError(
                f"need 0 <= low <= high, got (low={low}, high={high})"
            )
        self.high = high
        self.low = low
        self._active = False

    def reset(self) -> None:
        self._active = False

    def update(self, signal_value: float) -> bool:
        if not np.isfinite(signal_value):
            raise SafetyError(f"non-finite signal value {signal_value}")
        if self._active:
            if signal_value < self.low:
                self._active = False
        elif signal_value > self.high:
            self._active = True
        return self._active

    def state_dict(self) -> dict:
        return {"active": bool(self._active)}

    def load_state_dict(self, state: dict) -> None:
        self._active = bool(state["active"])
