"""Alternative thresholding strategies (paper future work, Section 5).

"Natural directions for future research include ... exploring the
implications for the performance of different thresholding strategies."
The paper's own rules live in :mod:`repro.core.thresholding` (k-window
variance + l-consecutive); this module adds two classical alternatives
behind the same :class:`~repro.core.thresholding.DefaultTrigger` interface:

* :class:`EWMATrigger` — exponential smoothing of the raw signal level
  against a bar; memory decays geometrically instead of dropping out of a
  window, so brief spikes are forgiven but sustained elevation fires.
* :class:`CusumTrigger` — the CUSUM change-point detector: accumulates
  evidence that the signal's mean has risen above its in-distribution
  level; provably detects persistent small shifts that per-step rules
  miss, at the cost of a tunable drift allowance.
* :class:`HysteresisTrigger` — distinct on/off bars, for revertible
  controllers: fires above the high bar and only clears below the low
  bar, preventing flapping near the threshold.

The strategy-ablation benchmark compares all of them under the same
signal and calibration budget.

Each strategy also provides a vectorized :class:`TriggerTable`
(:meth:`~repro.core.thresholding.DefaultTrigger.make_table`): all three
rules are elementwise scalar recurrences, so a bank of rows updates in
one numpy operation per wave with bitwise-identical decisions — the
serve engine's continuous-batching kernel works for every trigger in the
library, not just the paper's.
"""

from __future__ import annotations

import numpy as np

from repro.core.signals import TRIGGERS
from repro.core.thresholding import DefaultTrigger, TriggerTable, check_finite_values
from repro.errors import SafetyError

__all__ = [
    "CusumTrigger",
    "CusumTriggerTable",
    "EWMATrigger",
    "EWMATriggerTable",
    "HysteresisTrigger",
    "HysteresisTriggerTable",
]


@TRIGGERS.register("ewma")
class EWMATrigger(DefaultTrigger):
    """Fire when the exponentially smoothed signal exceeds ``bar``."""

    def __init__(self, bar: float, alpha: float = 0.3) -> None:
        if bar < 0:
            raise SafetyError(f"bar must be >= 0, got {bar}")
        if not 0.0 < alpha <= 1.0:
            raise SafetyError(f"alpha must be in (0, 1], got {alpha}")
        self.bar = bar
        self.alpha = alpha
        self._level: float | None = None

    def reset(self) -> None:
        self._level = None

    @property
    def level(self) -> float:
        """The current smoothed signal level."""
        return self._level if self._level is not None else 0.0

    def update(self, signal_value: float) -> bool:
        if not np.isfinite(signal_value):
            raise SafetyError(f"non-finite signal value {signal_value}")
        if self._level is None:
            self._level = float(signal_value)
        else:
            self._level = (
                self.alpha * float(signal_value)
                + (1.0 - self.alpha) * self._level
            )
        return self._level > self.bar

    def make_table(self, capacity: int) -> "EWMATriggerTable":
        """A bank of *capacity* independent EWMA rows."""
        return EWMATriggerTable(capacity, bar=self.bar, alpha=self.alpha)

    def state_dict(self) -> dict:
        return {"level": None if self._level is None else float(self._level)}

    def load_state_dict(self, state: dict) -> None:
        level = state["level"]
        self._level = None if level is None else float(level)


class EWMATriggerTable(TriggerTable):
    """Vectorized bank of :class:`EWMATrigger` rows.

    The smoothing recurrence is elementwise, so a wave update is one
    fused numpy expression with bitwise-identical levels; an unseeded row
    adopts its first value exactly like the scalar trigger.
    """

    def __init__(self, capacity: int, bar: float, alpha: float = 0.3) -> None:
        if capacity < 1:
            raise SafetyError(f"capacity must be >= 1, got {capacity}")
        if bar < 0:
            raise SafetyError(f"bar must be >= 0, got {bar}")
        if not 0.0 < alpha <= 1.0:
            raise SafetyError(f"alpha must be in (0, 1], got {alpha}")
        self.capacity = capacity
        self.bar = bar
        self.alpha = alpha
        self._level = np.zeros(capacity, dtype=float)
        self._seen = np.zeros(capacity, dtype=bool)

    def reset_rows(self, rows: np.ndarray) -> None:
        """Clear the smoothed levels of *rows*."""
        self._level[rows] = 0.0
        self._seen[rows] = False

    def update_rows(self, rows: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Fold one value per row into the EWMA; fire where level > bar."""
        check_finite_values(values)
        blended = self.alpha * values + (1.0 - self.alpha) * self._level[rows]
        level = np.where(self._seen[rows], blended, values)
        self._level[rows] = level
        self._seen[rows] = True
        return level > self.bar


@TRIGGERS.register("cusum")
class CusumTrigger(DefaultTrigger):
    """One-sided CUSUM on the signal stream.

    Maintains ``S_t = max(0, S_{t-1} + (x_t - drift))`` and fires when
    ``S_t`` exceeds ``threshold``.  ``drift`` should be set a little above
    the signal's in-distribution mean: in-distribution excursions then
    bleed off, while a persistent OOD elevation accumulates linearly and
    must eventually fire.
    """

    def __init__(self, threshold: float, drift: float) -> None:
        if threshold <= 0:
            raise SafetyError(f"threshold must be positive, got {threshold}")
        if drift < 0:
            raise SafetyError(f"drift must be >= 0, got {drift}")
        self.threshold = threshold
        self.drift = drift
        self._statistic = 0.0

    def reset(self) -> None:
        self._statistic = 0.0

    @property
    def statistic(self) -> float:
        """The accumulated CUSUM statistic."""
        return self._statistic

    def update(self, signal_value: float) -> bool:
        if not np.isfinite(signal_value):
            raise SafetyError(f"non-finite signal value {signal_value}")
        self._statistic = max(
            0.0, self._statistic + float(signal_value) - self.drift
        )
        return self._statistic > self.threshold

    def make_table(self, capacity: int) -> "CusumTriggerTable":
        """A bank of *capacity* independent CUSUM rows."""
        return CusumTriggerTable(
            capacity, threshold=self.threshold, drift=self.drift
        )

    def state_dict(self) -> dict:
        return {"statistic": float(self._statistic)}

    def load_state_dict(self, state: dict) -> None:
        self._statistic = float(state["statistic"])


class CusumTriggerTable(TriggerTable):
    """Vectorized bank of :class:`CusumTrigger` rows.

    ``S = max(0, S + x - drift)`` is elementwise, so the bank updates in
    one ``np.maximum`` per wave with bitwise-identical statistics.
    """

    def __init__(self, capacity: int, threshold: float, drift: float) -> None:
        if capacity < 1:
            raise SafetyError(f"capacity must be >= 1, got {capacity}")
        if threshold <= 0:
            raise SafetyError(f"threshold must be positive, got {threshold}")
        if drift < 0:
            raise SafetyError(f"drift must be >= 0, got {drift}")
        self.capacity = capacity
        self.threshold = threshold
        self.drift = drift
        self._statistic = np.zeros(capacity, dtype=float)

    def reset_rows(self, rows: np.ndarray) -> None:
        """Clear the accumulated statistics of *rows*."""
        self._statistic[rows] = 0.0

    def update_rows(self, rows: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Accumulate drift-adjusted evidence; fire where S > threshold."""
        check_finite_values(values)
        statistic = np.maximum(
            0.0, self._statistic[rows] + values - self.drift
        )
        self._statistic[rows] = statistic
        return statistic > self.threshold


@TRIGGERS.register("hysteresis")
class HysteresisTrigger(DefaultTrigger):
    """Two-bar rule: fire above ``high``, clear only below ``low``.

    Meaningful for controllers with ``allow_revert=True``: a single bar
    makes the controller flap when the signal hovers near it; hysteresis
    requires the signal to genuinely recover before control returns to
    the learned policy.
    """

    def __init__(self, high: float, low: float) -> None:
        if not 0.0 <= low <= high:
            raise SafetyError(
                f"need 0 <= low <= high, got (low={low}, high={high})"
            )
        self.high = high
        self.low = low
        self._active = False

    def reset(self) -> None:
        self._active = False

    def update(self, signal_value: float) -> bool:
        if not np.isfinite(signal_value):
            raise SafetyError(f"non-finite signal value {signal_value}")
        if self._active:
            if signal_value < self.low:
                self._active = False
        elif signal_value > self.high:
            self._active = True
        return self._active

    def make_table(self, capacity: int) -> "HysteresisTriggerTable":
        """A bank of *capacity* independent hysteresis rows."""
        return HysteresisTriggerTable(capacity, high=self.high, low=self.low)

    def state_dict(self) -> dict:
        return {"active": bool(self._active)}

    def load_state_dict(self, state: dict) -> None:
        self._active = bool(state["active"])


class HysteresisTriggerTable(TriggerTable):
    """Vectorized bank of :class:`HysteresisTrigger` rows.

    The two-bar state machine is a pure elementwise select: active rows
    stay active unless the value drops below ``low``, idle rows activate
    above ``high``.
    """

    def __init__(self, capacity: int, high: float, low: float) -> None:
        if capacity < 1:
            raise SafetyError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 <= low <= high:
            raise SafetyError(
                f"need 0 <= low <= high, got (low={low}, high={high})"
            )
        self.capacity = capacity
        self.high = high
        self.low = low
        self._active = np.zeros(capacity, dtype=bool)

    def reset_rows(self, rows: np.ndarray) -> None:
        """Deactivate *rows*."""
        self._active[rows] = False

    def update_rows(self, rows: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Advance the two-bar state machine one value per row."""
        check_finite_values(values)
        active = np.where(
            self._active[rows], ~(values < self.low), values > self.high
        )
        self._active[rows] = active
        return active
