"""Online Safety Assurance (OSAP) — the paper's contribution.

Detect, in real time, when a learning-augmented agent is operating outside
its training distribution, and default to a safe policy when it is:

* :mod:`repro.core.signals` — the uncertainty-signal interface.
* :mod:`repro.core.novelty_signal` — ``U_S``: state uncertainty via
  one-class-SVM novelty detection over windows of throughput statistics.
* :mod:`repro.core.ensemble_signals` — ``U_pi`` (agent-ensemble KL
  disagreement) and ``U_V`` (value-ensemble disagreement), with the
  paper's top-2 outlier trimming.
* :mod:`repro.core.thresholding` — the k-window variance and l-consecutive
  defaulting rules.
* :mod:`repro.core.controller` — :class:`~repro.core.controller.SafetyController`,
  the policy wrapper that switches from the learned policy to the default.
* :mod:`repro.core.calibration` — threshold calibration so all schemes
  match the ND scheme's in-distribution performance (Section 2.5).
* :mod:`repro.core.osap` — one-call construction of the paper's three
  safety-enhanced Pensieve variants from trained artifacts.
"""

from repro.core.calibration import CalibrationResult, calibrate_variance_threshold
from repro.core.controller import SafetyController
from repro.core.ensemble_signals import PolicyEnsembleSignal, ValueEnsembleSignal
from repro.core.monitor import (
    DecisionRecord,
    MonitoredController,
    SignalRecorder,
    explain_default,
)
from repro.core.novelty_signal import StateNoveltySignal, throughput_window_samples
from repro.core.osap import SafetyConfig, SafetySuite, build_safety_suite
from repro.core.signals import UncertaintySignal
from repro.core.thresholding import (
    ConsecutiveTrigger,
    DefaultTrigger,
    VarianceTrigger,
)

__all__ = [
    "CalibrationResult",
    "ConsecutiveTrigger",
    "DecisionRecord",
    "DefaultTrigger",
    "MonitoredController",
    "PolicyEnsembleSignal",
    "SafetyConfig",
    "SafetyController",
    "SafetySuite",
    "SignalRecorder",
    "StateNoveltySignal",
    "UncertaintySignal",
    "ValueEnsembleSignal",
    "VarianceTrigger",
    "build_safety_suite",
    "calibrate_variance_threshold",
    "explain_default",
    "throughput_window_samples",
]
