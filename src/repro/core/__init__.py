"""Online Safety Assurance (OSAP) — the paper's contribution.

Detect, in real time, when a learning-augmented agent is operating outside
its training distribution, and default to a safe policy when it is:

* :mod:`repro.core.signals` — the uncertainty-signal protocol and the
  string-keyed registries of signals, novelty detectors, and triggers.
* :mod:`repro.core.novelty_signal` — ``U_S``: state uncertainty via
  novelty detection over windows of throughput statistics.
* :mod:`repro.core.ensemble_signals` — ``U_pi`` (agent-ensemble KL
  disagreement) and ``U_V`` (value-ensemble disagreement), with the
  paper's top-2 outlier trimming.
* :mod:`repro.core.thresholding` — the k-window variance and l-consecutive
  defaulting rules.
* :mod:`repro.core.monitor` — :class:`~repro.core.monitor.SafetyMonitor`,
  the serializable step-stream state machine, and
  :class:`~repro.core.monitor.SafetyController`, its policy-facing
  adapter (re-exported from :mod:`repro.core.controller`).
* :mod:`repro.core.calibration` — the domain-agnostic threshold-selection
  rule (Section 2.5); the session-running half lives in
  :mod:`repro.abr.calibration`.
* :mod:`repro.core.osap` — :class:`~repro.core.osap.SafetyConfig`, the
  validated parameter set; suite construction lives in
  :mod:`repro.abr.suite`.

This layer never imports the ABR substrate, the serving engine, or the
experiment harness (enforced by ``tools/check_layers.py``): anything that
streams observations can be monitored.
"""

from repro.core.calibration import CalibrationResult, select_threshold
from repro.core.ensemble_signals import (
    PolicyEnsembleSignal,
    ValueEnsembleSignal,
    policy_disagreement,
    trim_by_distance,
    value_disagreement,
)
from repro.core.monitor import (
    DecisionRecord,
    MonitorDecision,
    MonitoredController,
    SafetyController,
    SafetyMonitor,
    SignalRecorder,
    explain_default,
)
from repro.core.novelty_signal import StateNoveltySignal, throughput_window_samples
from repro.core.osap import SafetyConfig
from repro.core.signals import (
    DETECTORS,
    SIGNALS,
    TRIGGERS,
    ComponentRegistry,
    UncertaintySignal,
    make_detector,
    make_signal,
    make_trigger,
)
from repro.core.thresholding import (
    ConsecutiveTrigger,
    DefaultTrigger,
    VarianceTrigger,
)

__all__ = [
    "CalibrationResult",
    "ComponentRegistry",
    "ConsecutiveTrigger",
    "DETECTORS",
    "DecisionRecord",
    "DefaultTrigger",
    "MonitorDecision",
    "MonitoredController",
    "PolicyEnsembleSignal",
    "SIGNALS",
    "SafetyConfig",
    "SafetyController",
    "SafetyMonitor",
    "SignalRecorder",
    "StateNoveltySignal",
    "TRIGGERS",
    "UncertaintySignal",
    "ValueEnsembleSignal",
    "VarianceTrigger",
    "explain_default",
    "make_detector",
    "make_signal",
    "make_trigger",
    "policy_disagreement",
    "select_threshold",
    "throughput_window_samples",
    "trim_by_distance",
    "value_disagreement",
]
