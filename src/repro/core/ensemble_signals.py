"""``U_pi`` and ``U_V``: output uncertainty via ensemble disagreement.

Section 2.4 defines both as a sum of distances between ensemble-member
outputs and the members' average — KL divergence for action distributions
(``U_pi``), absolute difference for scalar values (``U_V``).  Section 3.1
adds trimming: "the two outputs ... whose distance from the average is
highest are discarded and U_pi and U_V are computed with respect to the
three surviving outputs".

Both signals are continuous; the k-window variance rule in
:mod:`repro.core.thresholding` converts them into defaulting decisions.
"""

from __future__ import annotations

import numpy as np

from repro.core.signals import SIGNALS, UncertaintySignal
from repro.errors import ReproError, SafetyError
from repro.nn.losses import kl_divergence
from repro.perf import fast_paths_enabled

__all__ = [
    "PolicyEnsembleSignal",
    "ValueEnsembleSignal",
    "policy_disagreement",
    "policy_disagreement_batch",
    "trim_by_distance",
    "value_disagreement",
    "value_disagreement_batch",
]


def _try_stack_actors(agents: list):
    """A batched forward over the members' actors, or ``None`` when the
    members are not stackable (non-Pensieve policies, mixed shapes)."""
    from repro.pensieve.agent import PensieveAgent
    from repro.pensieve.stacked import StackedActorEnsemble

    if not all(type(agent) is PensieveAgent for agent in agents):
        return None
    try:
        return StackedActorEnsemble([agent.actor for agent in agents])
    except ReproError:
        return None


def _try_stack_critics(value_functions: list):
    """A batched forward over the members' critics, or ``None``."""
    from repro.pensieve.agent import PensieveValueFunction
    from repro.pensieve.stacked import StackedCriticEnsemble

    if not all(type(vf) is PensieveValueFunction for vf in value_functions):
        return None
    try:
        return StackedCriticEnsemble([vf.critic for vf in value_functions])
    except ReproError:
        return None


def trim_by_distance(
    outputs: np.ndarray, distances: np.ndarray, trim: int
) -> np.ndarray:
    """Drop the *trim* outputs farthest from the ensemble average.

    Returns the surviving outputs (at least one always survives).
    """
    if trim < 0:
        raise SafetyError(f"trim must be >= 0, got {trim}")
    if outputs.shape[0] <= trim:
        raise SafetyError(
            f"cannot trim {trim} of {outputs.shape[0]} ensemble outputs"
        )
    if trim == 0:
        return outputs
    keep = np.argsort(distances)[: outputs.shape[0] - trim]
    return outputs[np.sort(keep)]


def policy_disagreement(distributions: np.ndarray, trim: int) -> float:
    """``U_pi`` of one decision step, from the members' distributions.

    *distributions* is ``(members, num_actions)`` — each member's action
    distribution for the same observation.  This is the whole signal
    computation minus the forward passes, so any caller that already has
    the distributions (the serve engine batches them across sessions)
    produces bitwise-identical values to :class:`PolicyEnsembleSignal`.
    """
    mean = distributions.mean(axis=0)
    distances = kl_divergence(
        distributions, np.broadcast_to(mean, distributions.shape)
    )
    survivors = trim_by_distance(distributions, distances, trim)
    survivor_mean = survivors.mean(axis=0)
    return float(
        kl_divergence(
            survivors, np.broadcast_to(survivor_mean, survivors.shape)
        ).sum()
    )


def value_disagreement(values: np.ndarray, trim: int) -> float:
    """``U_V`` of one decision step, from the members' value estimates.

    *values* is ``(members,)``.  Same contract as
    :func:`policy_disagreement`: the math behind
    :class:`ValueEnsembleSignal`, reusable on externally batched values.
    """
    distances = np.abs(values - values.mean())
    survivors = trim_by_distance(values[:, None], distances, trim)[:, 0]
    return float(np.abs(survivors - survivors.mean()).sum())


def _keep_rows(distances: np.ndarray, trim: int) -> np.ndarray:
    """Per-column survivor indices, ``(members - trim, batch)`` ascending.

    The batched form of :func:`trim_by_distance`'s selection: numpy sorts
    every lane of ``axis=0`` with the same algorithm it applies to the
    equivalent 1-D array, so each column's survivor set (ties included)
    matches the scalar path's exactly.
    """
    members = distances.shape[0]
    if trim < 0:
        raise SafetyError(f"trim must be >= 0, got {trim}")
    if members <= trim:
        raise SafetyError(f"cannot trim {trim} of {members} ensemble outputs")
    return np.sort(np.argsort(distances, axis=0)[: members - trim], axis=0)


def policy_disagreement_batch(distributions: np.ndarray, trim: int) -> np.ndarray:
    """``U_pi`` for a whole wave of sessions in one vectorized reduction.

    *distributions* is ``(members, batch, num_actions)``; returns one
    signal value per batch column.  Column *b* is bitwise-equal to
    ``policy_disagreement(distributions[:, b, :], trim)``: every
    operation is elementwise or a short fixed-length reduction whose
    accumulation order does not depend on the batch shape.
    """
    members = distributions.shape[0]
    means = distributions.mean(axis=0)
    if trim == 0:
        if members <= 0:
            raise SafetyError("cannot trim 0 of 0 ensemble outputs")
        survivors = distributions
    else:
        distances = kl_divergence(
            distributions, np.broadcast_to(means, distributions.shape)
        )
        keep = _keep_rows(distances, trim)
        survivors = np.take_along_axis(distributions, keep[:, :, None], axis=0)
    survivor_means = survivors.mean(axis=0)
    return kl_divergence(
        survivors, np.broadcast_to(survivor_means, survivors.shape)
    ).sum(axis=0)


def value_disagreement_batch(values: np.ndarray, trim: int) -> np.ndarray:
    """``U_V`` for a whole wave of sessions in one vectorized reduction.

    *values* is ``(members, batch)``; returns one signal value per batch
    column, each bitwise-equal to ``value_disagreement(values[:, b], trim)``.
    """
    members = values.shape[0]
    means = values.mean(axis=0)
    if trim == 0:
        if members <= 0:
            raise SafetyError("cannot trim 0 of 0 ensemble outputs")
        survivors = values
    else:
        distances = np.abs(values - means)
        keep = _keep_rows(distances, trim)
        survivors = np.take_along_axis(values, keep, axis=0)
    return np.abs(survivors - survivors.mean(axis=0)).sum(axis=0)


@SIGNALS.register("U_pi")
class PolicyEnsembleSignal(UncertaintySignal):
    """``U_pi``: KL disagreement within an agent ensemble.

    Given the action distributions output by the ensemble members for the
    current observation, compute each member's KL divergence from the
    members' mean distribution, discard the *trim* farthest members, and
    return the sum of KL divergences of the survivors from the survivors'
    mean.
    """

    binary = False
    stateless = True

    def __init__(self, agents: list, trim: int = 2) -> None:
        if len(agents) < 2:
            raise SafetyError(
                f"need an ensemble of >= 2 agents, got {len(agents)}"
            )
        if not 0 <= trim < len(agents) - 1:
            raise SafetyError(
                f"trim must leave >= 2 members, got trim={trim} of {len(agents)}"
            )
        self.agents = list(agents)
        self.trim = trim
        self._stacked = _try_stack_actors(self.agents)

    def measure(self, observation: np.ndarray) -> float:
        if self._stacked is not None and fast_paths_enabled():
            distributions = self._stacked.probabilities(observation)
        else:
            distributions = np.stack(
                [agent.action_probabilities(observation) for agent in self.agents]
            )
        return policy_disagreement(distributions, self.trim)

    def measure_batch(self, observations: np.ndarray) -> np.ndarray:
        """``U_pi`` for one observation per concurrent session.

        With a stackable ensemble and fast paths on, all members answer
        for all sessions in one fused forward — the serve engine's
        cross-session batch.  Values match :meth:`measure` up to BLAS
        batch-shape accumulation (see
        :meth:`repro.pensieve.stacked.StackedActorEnsemble.probabilities_batch`).
        """
        if self._stacked is None or not fast_paths_enabled():
            return super().measure_batch(observations)
        distributions = self._stacked.probabilities_batch(observations)
        return policy_disagreement_batch(distributions, self.trim)


@SIGNALS.register("U_V")
class ValueEnsembleSignal(UncertaintySignal):
    """``U_V``: disagreement within a value-function ensemble.

    The per-member distance is the absolute difference from the mean
    value; after trimming, the signal is the sum of survivors' distances
    from the survivors' mean.
    """

    binary = False
    stateless = True

    def __init__(self, value_functions: list, trim: int = 2) -> None:
        if len(value_functions) < 2:
            raise SafetyError(
                f"need an ensemble of >= 2 value functions, got {len(value_functions)}"
            )
        if not 0 <= trim < len(value_functions) - 1:
            raise SafetyError(
                f"trim must leave >= 2 members, got trim={trim} of "
                f"{len(value_functions)}"
            )
        self.value_functions = list(value_functions)
        self.trim = trim
        self._stacked = _try_stack_critics(self.value_functions)

    def measure(self, observation: np.ndarray) -> float:
        if self._stacked is not None and fast_paths_enabled():
            values = self._stacked.values(observation)
        else:
            values = np.array(
                [vf.value(observation) for vf in self.value_functions]
            )
        return value_disagreement(values, self.trim)

    def measure_batch(self, observations: np.ndarray) -> np.ndarray:
        """``U_V`` for one observation per concurrent session (same
        contract as :meth:`PolicyEnsembleSignal.measure_batch`)."""
        if self._stacked is None or not fast_paths_enabled():
            return super().measure_batch(observations)
        values = self._stacked.values_batch(observations)
        return value_disagreement_batch(values, self.trim)
