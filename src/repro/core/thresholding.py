"""Defaulting rules: turning a per-step uncertainty signal into a
switch-to-default decision (Section 2.5 / 3.1).

Two smoothing ideas guard against "premature transitions to the default
policy because of sporadic or noisy data points":

1. windows of the last *k* signal values — the binary ``U_S`` already
   works on windowed samples internally; the continuous ``U_pi``/``U_V``
   use the **variance** of the signal over the last *k* steps,
2. only defaulting when the condition holds *l* consecutive times.

:class:`ConsecutiveTrigger` implements (2) alone for binary signals;
:class:`VarianceTrigger` composes (1) and (2) for continuous signals, with
the variance bar ``alpha`` being the calibrated quantity.

Vectorized banks: a trigger can additionally expose a
:class:`TriggerTable` (:meth:`DefaultTrigger.make_table`) — the same
decision rule over *rows* of independent sessions, updated with one
vectorized operation per serving wave instead of one Python call per
session.  A table row is bitwise-equivalent to a scalar trigger fed the
same value stream (asserted by ``tests/test_serve_table.py``); the serve
engine's continuous-batching kernel is built on this equivalence.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.signals import TRIGGERS
from repro.errors import SafetyError

__all__ = [
    "ConsecutiveTrigger",
    "ConsecutiveTriggerTable",
    "DefaultTrigger",
    "TriggerTable",
    "VarianceTrigger",
    "VarianceTriggerTable",
    "check_finite_values",
]


class TriggerTable:
    """A bank of independent trigger rows updated by vectorized waves.

    Each row carries the per-session state of one scalar trigger; the
    contract is exact equivalence: for any value stream, a row fed through
    :meth:`update_rows` fires at exactly the steps the corresponding
    scalar :class:`DefaultTrigger` would.  Rows are recycled between
    sessions with :meth:`reset_rows` (the serve engine's slot free-list).
    """

    def reset_rows(self, rows: np.ndarray) -> None:
        """Clear per-session state of every row in *rows*."""
        raise NotImplementedError

    def update_rows(self, rows: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Fold one signal value per row in; return a fired bool array.

        *rows* are distinct row indices and *values* their float64 signal
        measurements for this wave; the result aligns with *rows*.
        """
        raise NotImplementedError

    def recent_values(self, row: int) -> list[float]:
        """The signal values this row currently remembers (oldest first).

        Used by the observability layer to attach the window that led to
        a hand-off; tables without a window report an empty list.
        """
        return []


class DefaultTrigger:
    """Base trigger: consumes the signal stream, answers "default now?"."""

    def reset(self) -> None:
        """Clear per-session state."""

    def update(self, signal_value: float) -> bool:
        """Fold one signal value in; return whether to default at this step."""
        raise NotImplementedError

    def make_table(self, capacity: int) -> TriggerTable | None:
        """A :class:`TriggerTable` of *capacity* rows of this rule.

        Returns ``None`` when no vectorized equivalent exists (the serve
        engine then falls back to per-session scalar triggers).
        """
        return None

    def state_dict(self) -> dict:
        """Per-session state as a JSON-able mapping (see
        :meth:`repro.core.signals.UncertaintySignal.state_dict`)."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        if state:
            raise SafetyError(
                f"{type(self).__name__} is stateless but was asked to "
                f"restore state keys {sorted(state)}"
            )


def check_finite_values(values: np.ndarray) -> None:
    """Raise :class:`SafetyError` naming the first non-finite value.

    The vectorized counterpart of the scalar triggers' per-value check;
    runs *before* any row state is touched so a poisoned wave never
    half-updates the bank.
    """
    if not np.all(np.isfinite(values)):
        bad = values[~np.isfinite(values)][0]
        raise SafetyError(f"non-finite signal value {bad}")


@TRIGGERS.register("consecutive")
class ConsecutiveTrigger(DefaultTrigger):
    """Fire after *l* consecutive uncertain steps (binary signals).

    The paper's ``U_S`` rule: "when samples are classified as OOD for
    l = 3 consecutive time steps, the system defaults to BB".
    """

    def __init__(self, l: int = 3) -> None:
        if l < 1:
            raise SafetyError(f"l must be >= 1, got {l}")
        self.l = l
        self._streak = 0

    def reset(self) -> None:
        self._streak = 0

    def update(self, signal_value: float) -> bool:
        if signal_value > 0:
            self._streak += 1
        else:
            self._streak = 0
        return self._streak >= self.l

    def make_table(self, capacity: int) -> "ConsecutiveTriggerTable":
        """A bank of *capacity* independent l-consecutive rows."""
        return ConsecutiveTriggerTable(capacity, l=self.l)

    def state_dict(self) -> dict:
        return {"streak": int(self._streak)}

    def load_state_dict(self, state: dict) -> None:
        self._streak = int(state["streak"])


class ConsecutiveTriggerTable(TriggerTable):
    """Vectorized bank of :class:`ConsecutiveTrigger` rows.

    State per row is one streak counter; a wave update is two elementwise
    operations, exactly reproducing the scalar increment-or-reset rule.
    """

    def __init__(self, capacity: int, l: int = 3) -> None:
        if capacity < 1:
            raise SafetyError(f"capacity must be >= 1, got {capacity}")
        if l < 1:
            raise SafetyError(f"l must be >= 1, got {l}")
        self.capacity = capacity
        self.l = l
        self._streak = np.zeros(capacity, dtype=np.int64)

    def reset_rows(self, rows: np.ndarray) -> None:
        """Clear the streaks of *rows*."""
        self._streak[rows] = 0

    def update_rows(self, rows: np.ndarray, values: np.ndarray) -> np.ndarray:
        """One value per row: streak+1 where value > 0, else reset to 0."""
        streak = np.where(values > 0, self._streak[rows] + 1, 0)
        self._streak[rows] = streak
        return streak >= self.l


@TRIGGERS.register("variance")
class VarianceTrigger(DefaultTrigger):
    """Fire when the k-window variance exceeds ``alpha``, *l* times in a row.

    The paper's rule for ``U_pi``/``U_V``: "the system defaults to BB when
    the variance of this value across the last k = 5 time steps exceeds a
    certain threshold alpha for l consecutive times".  ``alpha`` is set by
    calibration (:mod:`repro.core.calibration`).
    """

    def __init__(self, alpha: float, k: int = 5, l: int = 3) -> None:
        if alpha < 0:
            raise SafetyError(f"alpha must be >= 0, got {alpha}")
        if k < 2:
            raise SafetyError(f"k must be >= 2 to define a variance, got {k}")
        if l < 1:
            raise SafetyError(f"l must be >= 1, got {l}")
        self.alpha = alpha
        self.k = k
        self.l = l
        self._window: deque[float] = deque(maxlen=k)
        self._streak = 0

    def reset(self) -> None:
        self._window.clear()
        self._streak = 0

    def window_variance(self) -> float:
        """Variance of the current window (0 until the window fills)."""
        if len(self._window) < self.k:
            return 0.0
        return float(np.var(np.asarray(self._window)))

    def update(self, signal_value: float) -> bool:
        if not np.isfinite(signal_value):
            raise SafetyError(f"non-finite signal value {signal_value}")
        self._window.append(float(signal_value))
        if self.window_variance() > self.alpha:
            self._streak += 1
        else:
            self._streak = 0
        return self._streak >= self.l

    def make_table(self, capacity: int) -> "VarianceTriggerTable":
        """A bank of *capacity* independent k-window/l-streak rows."""
        return VarianceTriggerTable(capacity, alpha=self.alpha, k=self.k, l=self.l)

    def state_dict(self) -> dict:
        return {
            "window": [float(v) for v in self._window],
            "streak": int(self._streak),
        }

    def load_state_dict(self, state: dict) -> None:
        window = [float(v) for v in state["window"]]
        if len(window) > self.k:
            raise SafetyError(
                f"restored window of {len(window)} exceeds k={self.k}"
            )
        self._window = deque(window, maxlen=self.k)
        self._streak = int(state["streak"])


class VarianceTriggerTable(TriggerTable):
    """Vectorized bank of :class:`VarianceTrigger` rows.

    Each row keeps its k-window as one row of a ``(capacity, k)`` array,
    *shifted* left on every update — not a ring buffer: the rotated
    element order of a ring would change ``np.var``'s summation order
    relative to the scalar trigger's deque and break the bitwise
    contract.  ``np.var(window, axis=1)`` over the full rows is bitwise
    identical to the scalar per-row 1-D ``np.var`` (small fixed k, same
    element order, same pairwise reduction), which is what makes the
    serve engine's batched trigger decisions exact.
    """

    def __init__(self, capacity: int, alpha: float, k: int = 5, l: int = 3) -> None:
        if capacity < 1:
            raise SafetyError(f"capacity must be >= 1, got {capacity}")
        if alpha < 0:
            raise SafetyError(f"alpha must be >= 0, got {alpha}")
        if k < 2:
            raise SafetyError(f"k must be >= 2 to define a variance, got {k}")
        if l < 1:
            raise SafetyError(f"l must be >= 1, got {l}")
        self.capacity = capacity
        self.alpha = alpha
        self.k = k
        self.l = l
        self._window = np.zeros((capacity, k), dtype=float)
        self._count = np.zeros(capacity, dtype=np.int64)
        self._streak = np.zeros(capacity, dtype=np.int64)

    def reset_rows(self, rows: np.ndarray) -> None:
        """Clear the windows and streaks of *rows*."""
        self._window[rows] = 0.0
        self._count[rows] = 0
        self._streak[rows] = 0

    def update_rows(self, rows: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Shift one value into each row's window; fire on variance > alpha
        sustained for l waves, exactly like the scalar rule."""
        check_finite_values(values)
        window = self._window[rows]
        window[:, :-1] = window[:, 1:]
        window[:, -1] = values
        self._window[rows] = window
        count = np.minimum(self._count[rows] + 1, self.k)
        self._count[rows] = count
        # Variance is defined (and compared) only once a window is full;
        # until then the scalar trigger reports 0.0, which never exceeds
        # a non-negative alpha.
        over = np.zeros(len(rows), dtype=bool)
        full = count >= self.k
        if np.any(full):
            over[full] = np.var(window[full], axis=1) > self.alpha
        streak = np.where(over, self._streak[rows] + 1, 0)
        self._streak[rows] = streak
        return streak >= self.l

    def recent_values(self, row: int) -> list[float]:
        """The row's current window contents, oldest first."""
        count = int(self._count[row])
        if count == 0:
            return []
        return [float(v) for v in self._window[row, self.k - count :]]
