"""Defaulting rules: turning a per-step uncertainty signal into a
switch-to-default decision (Section 2.5 / 3.1).

Two smoothing ideas guard against "premature transitions to the default
policy because of sporadic or noisy data points":

1. windows of the last *k* signal values — the binary ``U_S`` already
   works on windowed samples internally; the continuous ``U_pi``/``U_V``
   use the **variance** of the signal over the last *k* steps,
2. only defaulting when the condition holds *l* consecutive times.

:class:`ConsecutiveTrigger` implements (2) alone for binary signals;
:class:`VarianceTrigger` composes (1) and (2) for continuous signals, with
the variance bar ``alpha`` being the calibrated quantity.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.signals import TRIGGERS
from repro.errors import SafetyError

__all__ = ["DefaultTrigger", "ConsecutiveTrigger", "VarianceTrigger"]


class DefaultTrigger:
    """Base trigger: consumes the signal stream, answers "default now?"."""

    def reset(self) -> None:
        """Clear per-session state."""

    def update(self, signal_value: float) -> bool:
        """Fold one signal value in; return whether to default at this step."""
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Per-session state as a JSON-able mapping (see
        :meth:`repro.core.signals.UncertaintySignal.state_dict`)."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        if state:
            raise SafetyError(
                f"{type(self).__name__} is stateless but was asked to "
                f"restore state keys {sorted(state)}"
            )


@TRIGGERS.register("consecutive")
class ConsecutiveTrigger(DefaultTrigger):
    """Fire after *l* consecutive uncertain steps (binary signals).

    The paper's ``U_S`` rule: "when samples are classified as OOD for
    l = 3 consecutive time steps, the system defaults to BB".
    """

    def __init__(self, l: int = 3) -> None:
        if l < 1:
            raise SafetyError(f"l must be >= 1, got {l}")
        self.l = l
        self._streak = 0

    def reset(self) -> None:
        self._streak = 0

    def update(self, signal_value: float) -> bool:
        if signal_value > 0:
            self._streak += 1
        else:
            self._streak = 0
        return self._streak >= self.l

    def state_dict(self) -> dict:
        return {"streak": int(self._streak)}

    def load_state_dict(self, state: dict) -> None:
        self._streak = int(state["streak"])


@TRIGGERS.register("variance")
class VarianceTrigger(DefaultTrigger):
    """Fire when the k-window variance exceeds ``alpha``, *l* times in a row.

    The paper's rule for ``U_pi``/``U_V``: "the system defaults to BB when
    the variance of this value across the last k = 5 time steps exceeds a
    certain threshold alpha for l consecutive times".  ``alpha`` is set by
    calibration (:mod:`repro.core.calibration`).
    """

    def __init__(self, alpha: float, k: int = 5, l: int = 3) -> None:
        if alpha < 0:
            raise SafetyError(f"alpha must be >= 0, got {alpha}")
        if k < 2:
            raise SafetyError(f"k must be >= 2 to define a variance, got {k}")
        if l < 1:
            raise SafetyError(f"l must be >= 1, got {l}")
        self.alpha = alpha
        self.k = k
        self.l = l
        self._window: deque[float] = deque(maxlen=k)
        self._streak = 0

    def reset(self) -> None:
        self._window.clear()
        self._streak = 0

    def window_variance(self) -> float:
        """Variance of the current window (0 until the window fills)."""
        if len(self._window) < self.k:
            return 0.0
        return float(np.var(np.asarray(self._window)))

    def update(self, signal_value: float) -> bool:
        if not np.isfinite(signal_value):
            raise SafetyError(f"non-finite signal value {signal_value}")
        self._window.append(float(signal_value))
        if self.window_variance() > self.alpha:
            self._streak += 1
        else:
            self._streak = 0
        return self._streak >= self.l

    def state_dict(self) -> dict:
        return {
            "window": [float(v) for v in self._window],
            "streak": int(self._streak),
        }

    def load_state_dict(self, state: dict) -> None:
        window = [float(v) for v in state["window"]]
        if len(window) > self.k:
            raise SafetyError(
                f"restored window of {len(window)} exceeds k={self.k}"
            )
        self._window = deque(window, maxlen=self.k)
        self._streak = int(state["streak"])
