"""Adaptive-bitrate (ABR) video streaming simulation.

A faithful chunk-level reimplementation of the simulator Pensieve [27] was
trained on: a video client downloads chunks over a trace-driven link
(80 ms RTT, as in the paper's MahiMahi setup), maintains a playback buffer,
rebuffers when the buffer empties, and pauses downloads when the buffer is
full.  Each call to :meth:`~repro.abr.env.ABREnv.step` downloads one chunk
at the chosen ladder rung and returns Pensieve's observation matrix plus
the per-chunk QoE reward.

:mod:`repro.abr.session` runs a full policy-vs-trace session and collects
the per-chunk records that the evaluation harness aggregates.
"""

from repro.abr.env import ABREnv
from repro.abr.session import ChunkRecord, SessionResult, run_session
from repro.abr.state import S_INFO, S_LEN, ObservationView, StateBuilder

__all__ = [
    "ABREnv",
    "ChunkRecord",
    "ObservationView",
    "S_INFO",
    "S_LEN",
    "SessionResult",
    "StateBuilder",
    "run_session",
]
