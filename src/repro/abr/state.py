"""Pensieve's observation representation.

Pensieve's agent observes a ``(S_INFO, S_LEN)`` matrix rolling over the last
``S_LEN = 8`` chunks, with the rows (S_INFO = 6):

0. last selected bitrate, normalized by the top rung,
1. current buffer occupancy, in 10-second units,
2. measured throughput of recent chunk downloads (Mbit/s, normalized),
3. download time of recent chunks, in 10-second units,
4. sizes of the *next* chunk at each ladder rung, in megabytes
   (occupies the first ``num_bitrates`` columns),
5. fraction of the video still ahead.

Rows 0, 1, and 5 are scalars repeated in the last column only (matching the
reference implementation, which writes scalars into column -1 and lets the
conv layers read the vector rows).  :class:`StateBuilder` maintains the
rolling matrix; :class:`ObservationView` gives policies named, validated
access to an observation produced by it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.perf import fast_paths_enabled

__all__ = ["S_INFO", "S_LEN", "StateBuilder", "ObservationView"]

S_INFO = 6
S_LEN = 8

_BUFFER_NORM_S = 10.0
_TIME_NORM_S = 10.0
_THROUGHPUT_NORM_MBPS = 8.0
_BYTES_PER_MB = 1e6


class StateBuilder:
    """Maintains the rolling Pensieve observation matrix for one session."""

    def __init__(self, bitrates_kbps: np.ndarray, num_chunks: int) -> None:
        bitrates = np.asarray(bitrates_kbps, dtype=float)
        if bitrates.ndim != 1 or bitrates.size < 2:
            raise SimulationError("need a bitrate ladder with at least two rungs")
        if bitrates.size > S_LEN:
            raise SimulationError(
                f"ladder of {bitrates.size} rungs does not fit row 4 "
                f"(S_LEN = {S_LEN})"
            )
        if num_chunks <= 0:
            raise SimulationError(f"num_chunks must be positive, got {num_chunks}")
        self.bitrates_kbps = bitrates
        self.num_chunks = num_chunks
        self._state = np.zeros((S_INFO, S_LEN))

    def reset(self) -> np.ndarray:
        """Zero the rolling state and return the initial observation."""
        self._state = np.zeros((S_INFO, S_LEN))
        return self.observation()

    def push(
        self,
        bitrate_index: int,
        buffer_s: float,
        throughput_mbps: float,
        download_time_s: float,
        next_chunk_sizes_bytes: np.ndarray | None,
        chunks_remaining: int,
    ) -> np.ndarray:
        """Roll the state one chunk forward and return the new observation.

        *next_chunk_sizes_bytes* is ``None`` at the end of the video (there
        is no next chunk); row 4 is then zero.
        """
        if not 0 <= bitrate_index < self.bitrates_kbps.size:
            raise SimulationError(f"bitrate index {bitrate_index} out of range")
        if buffer_s < 0 or throughput_mbps < 0 or download_time_s < 0:
            raise SimulationError("state inputs must be non-negative")
        if not 0 <= chunks_remaining <= self.num_chunks:
            raise SimulationError(
                f"chunks_remaining {chunks_remaining} out of range"
            )
        sizes = None
        if next_chunk_sizes_bytes is not None:
            sizes = np.asarray(next_chunk_sizes_bytes, dtype=float)
            if sizes.shape != (self.bitrates_kbps.size,):
                raise SimulationError(
                    f"expected {self.bitrates_kbps.size} next-chunk sizes, "
                    f"got shape {sizes.shape}"
                )
        if fast_paths_enabled():
            # In-place left shift; every cell np.roll would wrap around is
            # overwritten below, so the resulting matrix is identical.
            state = self._state
            state[:, :-1] = state[:, 1:]
        else:
            state = np.roll(self._state, -1, axis=1)
        state[0, -1] = (
            self.bitrates_kbps[bitrate_index] / self.bitrates_kbps[-1]
        )
        state[1, -1] = buffer_s / _BUFFER_NORM_S
        state[2, -1] = throughput_mbps / _THROUGHPUT_NORM_MBPS
        state[3, -1] = download_time_s / _TIME_NORM_S
        state[4, :] = 0.0
        if sizes is not None:
            state[4, : sizes.size] = sizes / _BYTES_PER_MB
        state[5, -1] = chunks_remaining / self.num_chunks
        self._state = state
        return self.observation()

    def observation(self) -> np.ndarray:
        """A defensive copy of the current observation matrix."""
        return self._state.copy()


class ObservationView:
    """Named access to a Pensieve observation matrix.

    Lets heuristic policies (Buffer-Based, Rate-Based, MPC) read exactly the
    quantities they need from the shared observation format instead of
    keeping private side channels.
    """

    def __init__(self, observation: np.ndarray, bitrates_kbps: np.ndarray) -> None:
        observation = np.asarray(observation, dtype=float)
        if observation.shape != (S_INFO, S_LEN):
            raise SimulationError(
                f"observation must be ({S_INFO}, {S_LEN}), got {observation.shape}"
            )
        self._obs = observation
        self._bitrates = np.asarray(bitrates_kbps, dtype=float)

    @property
    def last_bitrate_index(self) -> int:
        """Ladder index of the previously selected bitrate."""
        normalized = self._obs[0, -1] * self._bitrates[-1]
        return int(np.argmin(np.abs(self._bitrates - normalized)))

    @property
    def buffer_s(self) -> float:
        """Playback buffer occupancy in seconds."""
        return float(self._obs[1, -1] * _BUFFER_NORM_S)

    @property
    def throughput_history_mbps(self) -> np.ndarray:
        """Measured throughput of the last ``S_LEN`` chunks (Mbit/s).

        Leading zeros mean "not yet observed" early in a session.
        """
        return self._obs[2] * _THROUGHPUT_NORM_MBPS

    @property
    def download_time_history_s(self) -> np.ndarray:
        """Download durations of the last ``S_LEN`` chunks (seconds)."""
        return self._obs[3] * _TIME_NORM_S

    @property
    def next_chunk_sizes_bytes(self) -> np.ndarray:
        """Upcoming chunk's size at each ladder rung (bytes)."""
        return self._obs[4, : self._bitrates.size] * _BYTES_PER_MB

    @property
    def remaining_fraction(self) -> float:
        """Fraction of the video still to download."""
        return float(self._obs[5, -1])
