"""One-call construction of the paper's safety-enhanced Pensieve variants.

:func:`build_safety_suite` performs the full offline phase for one
training distribution:

1. train the Pensieve agent ensemble (member 0 is "the" deployed agent),
2. train the value-function ensemble for member 0's policy,
3. fit the configured novelty detector (the OC-SVM by default) on
   throughput-window samples from member 0's training sessions,
4. build the three uncertainty signals and calibrate the ensemble
   signals' thresholds to the ND scheme's in-distribution QoE.

The result is a :class:`SafetySuite`: the vanilla agent plus the three
safety-enhanced controllers (ND, A-ensemble, V-ensemble), ready to be
evaluated on any test distribution — per session through
:func:`repro.abr.session.run_session`, or many sessions at once through
the :mod:`repro.serve` engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.abr.calibration import calibrate_variance_threshold, evaluate_mean_qoe
from repro.abr.session import run_session
from repro.core.calibration import CalibrationResult
from repro.core.ensemble_signals import PolicyEnsembleSignal, ValueEnsembleSignal
from repro.core.monitor import SafetyController
from repro.core.novelty_signal import StateNoveltySignal, throughput_window_samples
from repro.core.osap import SafetyConfig
from repro.core.thresholding import ConsecutiveTrigger, VarianceTrigger
from repro.errors import SafetyError
from repro.novelty.base import NoveltyDetector
from repro.pensieve.agent import PensieveAgent, PensieveValueFunction
from repro.pensieve.ensemble import train_agent_ensemble, train_value_ensemble
from repro.pensieve.training import TrainingConfig
from repro.policies.base import ABRPolicy
from repro.traces.dataset import DatasetSplit
from repro.traces.trace import Trace
from repro.util.rng import rng_from_seed
from repro.video.manifest import VideoManifest
from repro.video.qoe import QoEMetric

if TYPE_CHECKING:  # imported lazily to avoid a package-import cycle
    from repro.experiments.artifacts import ArtifactCache

__all__ = ["SafetySuite", "build_safety_suite", "collect_training_throughputs"]


@dataclass
class SafetySuite:
    """Everything the offline phase produces for one training distribution."""

    agent: PensieveAgent
    agents: list[PensieveAgent]
    value_functions: list[PensieveValueFunction]
    detector: NoveltyDetector
    nd_controller: SafetyController
    a_ensemble_controller: SafetyController
    v_ensemble_controller: SafetyController
    nd_qoe_in_distribution: float
    calibration_a: CalibrationResult
    calibration_v: CalibrationResult
    config: SafetyConfig = field(default_factory=SafetyConfig)

    def controllers(self) -> dict[str, SafetyController]:
        """The three schemes by their paper names."""
        return {
            "ND": self.nd_controller,
            "A-ensemble": self.a_ensemble_controller,
            "V-ensemble": self.v_ensemble_controller,
        }


def collect_training_throughputs(
    agent: PensieveAgent,
    manifest: VideoManifest,
    traces: tuple[Trace, ...] | list[Trace],
    qoe_metric: QoEMetric | None = None,
    seed: int = 0,
) -> list[np.ndarray]:
    """Per-session measured-throughput series from the agent's own
    training-environment sessions (the novelty detector's raw training
    data)."""
    if not traces:
        raise SafetyError("no traces to collect throughput series from")
    rng = rng_from_seed(seed)
    series = []
    for trace in traces:
        session = run_session(agent, manifest, trace, qoe_metric=qoe_metric, seed=rng)
        series.append(np.array([c.throughput_mbps for c in session.chunks]))
    return series


def build_safety_suite(
    manifest: VideoManifest,
    split: DatasetSplit,
    default_policy: ABRPolicy,
    is_synthetic: bool,
    training_config: TrainingConfig | None = None,
    safety_config: SafetyConfig | None = None,
    qoe_metric: QoEMetric | None = None,
    value_epochs: int = 200,
    seed: int = 0,
    max_workers: int | None = None,
    weight_cache: "ArtifactCache | None" = None,
    checkpoint_every: int | None = None,
) -> SafetySuite:
    """Run the full offline phase for one training distribution.

    *max_workers* fans the two ensemble trainings out over a process
    pool (see :mod:`repro.parallel`); the suite is identical either way.
    *weight_cache* (an :class:`~repro.experiments.artifacts.ArtifactCache`
    keyed by the training fingerprint) persists both ensembles' trained
    weights as ``.npz`` artifacts, so rebuilding the suite with an
    unchanged configuration loads the networks instead of retraining.
    *checkpoint_every* (or ``REPRO_CHECKPOINT_EVERY``) additionally
    checkpoints both trainings every N epochs into the same cache, so a
    suite build killed mid-ensemble resumes at the last epoch boundary
    with bitwise-identical results (see
    :mod:`repro.pensieve.checkpoint`).
    """
    safety = safety_config if safety_config is not None else SafetyConfig()
    training = training_config if training_config is not None else TrainingConfig()
    if not split.train:
        raise SafetyError("dataset split has no training traces")
    calibration_traces = split.validation if split.validation else split.train
    agents = train_agent_ensemble(
        manifest,
        split.train,
        size=safety.ensemble_size,
        config=training,
        qoe_metric=qoe_metric,
        root_seed=seed,
        max_workers=max_workers,
        cache=weight_cache,
        checkpoint_every=checkpoint_every,
    )
    # Standard model selection: deploy the ensemble member with the best
    # validation QoE.  (All members still feed the U_pi signal.)
    validation_qoes = [
        evaluate_mean_qoe(
            member, manifest, calibration_traces, qoe_metric=qoe_metric, seed=seed
        )
        for member in agents
    ]
    agent = agents[int(np.argmax(validation_qoes))]
    value_functions = train_value_ensemble(
        agent,
        manifest,
        split.train,
        size=safety.ensemble_size,
        gamma=training.gamma,
        epochs=value_epochs,
        filters=training.filters,
        hidden=training.hidden,
        reward_scale=training.reward_scale,
        qoe_metric=qoe_metric,
        root_seed=seed,
        max_workers=max_workers,
        cache=weight_cache,
        checkpoint_every=checkpoint_every,
    )
    k_ocsvm = safety.ocsvm_k(is_synthetic)
    throughputs = collect_training_throughputs(
        agent, manifest, split.train, qoe_metric=qoe_metric, seed=seed
    )
    samples = throughput_window_samples(
        throughputs,
        k=k_ocsvm,
        throughput_window=safety.throughput_window,
        max_samples=safety.max_ocsvm_samples,
        rng=rng_from_seed(seed),
    )
    detector = safety.build_detector().fit(samples)
    nd_signal = StateNoveltySignal(
        detector,
        manifest.bitrates_kbps,
        k=k_ocsvm,
        throughput_window=safety.throughput_window,
    )
    nd_controller = SafetyController(
        learned=agent,
        default=default_policy,
        signal=nd_signal,
        trigger=ConsecutiveTrigger(l=safety.l),
        allow_revert=safety.allow_revert,
        name="ND",
    )
    nd_qoe = evaluate_mean_qoe(
        nd_controller, manifest, calibration_traces, qoe_metric=qoe_metric, seed=seed
    )
    pi_signal = PolicyEnsembleSignal(agents, trim=safety.trim)
    calibration_a = calibrate_variance_threshold(
        pi_signal,
        learned=agent,
        default=default_policy,
        manifest=manifest,
        traces=calibration_traces,
        target_qoe=nd_qoe,
        k=safety.variance_k,
        l=safety.l,
        qoe_metric=qoe_metric,
        seed=seed,
    )
    a_controller = SafetyController(
        learned=agent,
        default=default_policy,
        signal=pi_signal,
        trigger=VarianceTrigger(
            alpha=calibration_a.alpha, k=safety.variance_k, l=safety.l
        ),
        allow_revert=safety.allow_revert,
        name="A-ensemble",
    )
    v_signal = ValueEnsembleSignal(value_functions, trim=safety.trim)
    calibration_v = calibrate_variance_threshold(
        v_signal,
        learned=agent,
        default=default_policy,
        manifest=manifest,
        traces=calibration_traces,
        target_qoe=nd_qoe,
        k=safety.variance_k,
        l=safety.l,
        qoe_metric=qoe_metric,
        seed=seed,
    )
    v_controller = SafetyController(
        learned=agent,
        default=default_policy,
        signal=v_signal,
        trigger=VarianceTrigger(
            alpha=calibration_v.alpha, k=safety.variance_k, l=safety.l
        ),
        allow_revert=safety.allow_revert,
        name="V-ensemble",
    )
    return SafetySuite(
        agent=agent,
        agents=agents,
        value_functions=value_functions,
        detector=detector,
        nd_controller=nd_controller,
        a_ensemble_controller=a_controller,
        v_ensemble_controller=v_controller,
        nd_qoe_in_distribution=float(nd_qoe),
        calibration_a=calibration_a,
        calibration_v=calibration_v,
        config=safety,
    )
