"""The chunk-level ABR streaming environment.

This reimplements the discrete-event simulator Pensieve was trained on
(``env.py`` in the reference code), against this library's trace and video
abstractions:

* one :meth:`ABREnv.step` = one chunk download at the chosen ladder rung;
* download time = RTT + the time to push the chunk's bytes through the
  trace's piecewise-constant bandwidth (walking trace segments, wrapping
  at the trace end);
* the playback buffer drains in real time during the download; if it
  empties, the difference is rebuffering; downloading then adds one chunk
  duration of content;
* if the buffer exceeds its cap (60 s, Pensieve's ``BUFFER_THRESH``), the
  client sleeps in 500 ms drain increments before requesting more;
* the per-chunk reward is the QoE metric's summand, so the episode return
  equals the session QoE exactly.

The first chunk is downloaded at the lowest rung before the agent's first
decision, as in the reference implementation, so throughput history is
never empty when the agent acts.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.mdp.interfaces import StepResult
from repro.abr.state import StateBuilder
from repro.perf import fast_paths_enabled
from repro.traces.trace import Trace
from repro.video.manifest import VideoManifest
from repro.video.qoe import LinearQoE, QoEMetric

__all__ = ["ABREnv"]

_DEFAULT_RTT_S = 0.080  # the paper: "a 80ms RTT between video client and server"
_DEFAULT_MAX_BUFFER_S = 60.0
_DRAIN_GRANULARITY_S = 0.5


class ABREnv:
    """Trace-driven ABR environment with Pensieve observations and rewards."""

    def __init__(
        self,
        manifest: VideoManifest,
        trace: Trace,
        qoe_metric: QoEMetric | None = None,
        rtt_s: float = _DEFAULT_RTT_S,
        max_buffer_s: float = _DEFAULT_MAX_BUFFER_S,
        start_offset_s: float = 0.0,
    ) -> None:
        if rtt_s < 0:
            raise SimulationError(f"RTT must be >= 0, got {rtt_s}")
        if max_buffer_s <= manifest.chunk_duration_s:
            raise SimulationError(
                "max buffer must exceed one chunk duration "
                f"({max_buffer_s} <= {manifest.chunk_duration_s})"
            )
        if start_offset_s < 0:
            raise SimulationError(f"start offset must be >= 0, got {start_offset_s}")
        self.manifest = manifest
        self.trace = trace
        self.qoe_metric = qoe_metric if qoe_metric is not None else LinearQoE()
        self.rtt_s = rtt_s
        self.max_buffer_s = max_buffer_s
        self.start_offset_s = start_offset_s
        self._state = StateBuilder(manifest.bitrates_kbps, manifest.num_chunks)
        self._trace_time = 0.0
        self._buffer_s = 0.0
        self._next_chunk = 0
        self._last_bitrate_index: int | None = None
        self._done = True

    @property
    def num_actions(self) -> int:
        """One action per ladder rung."""
        return self.manifest.num_bitrates

    @property
    def buffer_s(self) -> float:
        """Current playback buffer occupancy in seconds."""
        return self._buffer_s

    @property
    def chunks_downloaded(self) -> int:
        """How many chunks have been fetched so far this episode."""
        return self._next_chunk

    def reset(self) -> np.ndarray:
        """Start a session; the first chunk is fetched at the lowest rung."""
        self._trace_time = self.start_offset_s
        self._buffer_s = 0.0
        self._next_chunk = 0
        self._last_bitrate_index = None
        self._done = False
        self._state.reset()
        observation, _ = self._download_chunk(0)
        return observation

    def step(self, action: int) -> StepResult:
        """Download the next chunk at ladder rung *action*."""
        if self._done:
            raise SimulationError("step() called on a finished episode; call reset()")
        if not 0 <= action < self.num_actions:
            raise SimulationError(
                f"action must be in [0, {self.num_actions}), got {action}"
            )
        observation, info = self._download_chunk(action)
        reward = self.qoe_metric.chunk_reward(
            bitrate_mbps=info["bitrate_mbps"],
            rebuffer_s=info["rebuffer_s"],
            previous_bitrate_mbps=info["previous_bitrate_mbps"],
        )
        self._done = self._next_chunk >= self.manifest.num_chunks
        return StepResult(
            observation=observation, reward=reward, done=self._done, info=info
        )

    def _download_chunk(self, bitrate_index: int) -> tuple[np.ndarray, dict]:
        chunk_index = self._next_chunk
        size_bytes = self.manifest.chunk_size(chunk_index, bitrate_index)
        download_time = self.rtt_s + self._transfer_time(size_bytes)
        rebuffer = max(download_time - self._buffer_s, 0.0)
        self._buffer_s = max(self._buffer_s - download_time, 0.0)
        self._buffer_s += self.manifest.chunk_duration_s
        sleep_time = self._drain_if_full()
        throughput_mbps = size_bytes * 8.0 / download_time / 1e6
        previous_index = self._last_bitrate_index
        self._last_bitrate_index = bitrate_index
        self._next_chunk += 1
        remaining = self.manifest.num_chunks - self._next_chunk
        next_sizes = (
            self.manifest.next_chunk_sizes(self._next_chunk) if remaining > 0 else None
        )
        observation = self._state.push(
            bitrate_index=bitrate_index,
            buffer_s=self._buffer_s,
            throughput_mbps=throughput_mbps,
            download_time_s=download_time,
            next_chunk_sizes_bytes=next_sizes,
            chunks_remaining=remaining,
        )
        bitrates = self.manifest.bitrates_kbps
        info = {
            "chunk_index": chunk_index,
            "bitrate_index": bitrate_index,
            "bitrate_mbps": float(bitrates[bitrate_index]) / 1000.0,
            "previous_bitrate_mbps": (
                float(bitrates[previous_index]) / 1000.0
                if previous_index is not None
                else None
            ),
            "size_bytes": size_bytes,
            "download_time_s": download_time,
            "throughput_mbps": throughput_mbps,
            "rebuffer_s": rebuffer,
            "sleep_s": sleep_time,
            "buffer_s": self._buffer_s,
        }
        return observation, info

    def _transfer_time(self, size_bytes: float) -> float:
        """Seconds to push *size_bytes* through the trace from the current
        trace position, advancing that position."""
        if size_bytes <= 0:
            raise SimulationError(f"chunk size must be positive, got {size_bytes}")
        if fast_paths_enabled():
            return self._transfer_time_fast(size_bytes)
        elapsed = 0.0
        remaining = size_bytes
        # Walk piecewise-constant bandwidth segments, wrapping at trace end.
        for _ in range(10_000_000):
            rate_bytes_s = self.trace.bandwidth_at(self._trace_time) * 1e6 / 8.0
            segment = self._time_to_boundary(self._trace_time)
            capacity = rate_bytes_s * segment
            if capacity >= remaining:
                dt = remaining / rate_bytes_s
                self._trace_time += dt
                return elapsed + dt
            elapsed += segment
            remaining -= capacity
            self._trace_time += segment
        raise SimulationError(
            f"chunk of {size_bytes:.0f} bytes did not finish; trace "
            f"{self.trace.name!r} bandwidth is implausibly low"
        )

    def _transfer_time_fast(self, size_bytes: float) -> float:
        """:meth:`_transfer_time` with :meth:`Trace.bandwidth_at` and
        :meth:`_time_to_boundary` inlined over one shared segment lookup.

        Both helpers locate the current segment with the identical
        ``(time - times[0]) % duration + times[0]`` offset; computing it
        once per iteration halves the ``searchsorted`` work while keeping
        every float operation — and therefore every result — the same as
        the reference walk above.
        """
        times = self.trace.times
        bandwidths = self.trace.bandwidths_mbps
        start = times[0]
        duration = float(times[-1] - start)
        if duration <= 0:
            raise SimulationError("trace has zero duration")
        last = len(times) - 1
        elapsed = 0.0
        remaining = size_bytes
        for _ in range(10_000_000):
            offset = (self._trace_time - start) % duration + start
            index = int(times.searchsorted(offset, side="right")) - 1
            rate_bytes_s = float(bandwidths[index]) * 1e6 / 8.0
            if index < last:
                segment = float(times[index + 1] - offset)
                if segment <= 1e-12:
                    segment = float(times[index + 1] - times[index])
            else:
                segment = float(times[last] - offset) or duration
            capacity = rate_bytes_s * segment
            if capacity >= remaining:
                dt = remaining / rate_bytes_s
                self._trace_time += dt
                return elapsed + dt
            elapsed += segment
            remaining -= capacity
            self._trace_time += segment
        raise SimulationError(
            f"chunk of {size_bytes:.0f} bytes did not finish; trace "
            f"{self.trace.name!r} bandwidth is implausibly low"
        )

    def _time_to_boundary(self, time_s: float) -> float:
        """Seconds until the trace's next bandwidth change after *time_s*."""
        trace = self.trace
        offset = (time_s - trace.times[0]) % trace.duration + trace.times[0]
        index = int(np.searchsorted(trace.times, offset, side="right") - 1)
        boundary = trace.times[index + 1] if index + 1 < len(trace.times) else None
        if boundary is None:
            return float(trace.times[-1] - offset) or trace.duration
        gap = float(boundary - offset)
        # Guard against landing exactly on a boundary (gap == 0 would stall).
        return gap if gap > 1e-12 else float(
            trace.times[index + 1]
            - trace.times[index]
        )

    def _drain_if_full(self) -> float:
        """Sleep (advance the trace clock) while the buffer exceeds its cap."""
        if self._buffer_s <= self.max_buffer_s:
            return 0.0
        excess = self._buffer_s - self.max_buffer_s
        sleep_time = (
            np.ceil(excess / _DRAIN_GRANULARITY_S) * _DRAIN_GRANULARITY_S
        )
        self._buffer_s -= sleep_time
        self._trace_time += sleep_time
        return float(sleep_time)
