"""ABR-side threshold calibration: running the sessions behind Section 2.5.

The calibration *decision* — pick ``alpha`` from a candidate/QoE table —
is domain-agnostic and lives in :mod:`repro.core.calibration`.  This
module produces that table for the ABR domain: stream in-distribution
sessions to collect the signal's window-variance distribution (the
candidate grid) and evaluate the safety-enhanced agent's QoE at each
candidate.
"""

from __future__ import annotations

import numpy as np

from repro.abr.session import run_session
from repro.core.calibration import (
    CANDIDATE_QUANTILES,
    CalibrationResult,
    select_threshold,
)
from repro.core.monitor import SafetyController
from repro.core.signals import UncertaintySignal
from repro.core.thresholding import VarianceTrigger
from repro.errors import CalibrationError
from repro.mdp.interfaces import Policy
from repro.traces.trace import Trace
from repro.video.manifest import VideoManifest
from repro.video.qoe import QoEMetric

__all__ = [
    "calibrate_variance_threshold",
    "collect_window_variances",
    "evaluate_mean_qoe",
]


def evaluate_mean_qoe(
    policy: Policy,
    manifest: VideoManifest,
    traces: tuple[Trace, ...] | list[Trace],
    qoe_metric: QoEMetric | None = None,
    seed: int = 0,
) -> float:
    """Mean session QoE of *policy* over *traces*."""
    if not traces:
        raise CalibrationError("no traces to evaluate on")
    scores = [
        run_session(policy, manifest, trace, qoe_metric=qoe_metric, seed=seed).qoe
        for trace in traces
    ]
    return float(np.mean(scores))


def collect_window_variances(
    signal: UncertaintySignal,
    policy: Policy,
    manifest: VideoManifest,
    traces: tuple[Trace, ...] | list[Trace],
    k: int,
    qoe_metric: QoEMetric | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Observe the signal's k-window variance along in-distribution sessions.

    Runs *policy* (without any defaulting) while feeding the signal, and
    records the rolling variance a :class:`VarianceTrigger` would see —
    the empirical distribution the candidate thresholds are drawn from.
    """
    variances: list[float] = []
    for trace in traces:
        signal.reset()
        probe = VarianceTrigger(alpha=np.inf, k=k, l=1)
        session = run_session(
            policy, manifest, trace, qoe_metric=qoe_metric, seed=seed
        )
        for observation in session.observation_list:
            probe.update(signal.measure(observation))
            variances.append(probe.window_variance())
    if not variances:
        raise CalibrationError("no signal observations collected")
    return np.asarray(variances)


def calibrate_variance_threshold(
    signal: UncertaintySignal,
    learned: Policy,
    default: Policy,
    manifest: VideoManifest,
    traces: tuple[Trace, ...] | list[Trace],
    target_qoe: float,
    k: int = 5,
    l: int = 3,
    qoe_metric: QoEMetric | None = None,
    seed: int = 0,
    candidate_alphas: list[float] | None = None,
    tolerance_fraction: float = 0.02,
) -> CalibrationResult:
    """Choose ``alpha`` so the safety-enhanced agent matches *target_qoe*.

    *traces* must be in-distribution (the paper calibrates on the training
    distribution; we use the validation split).  Candidate thresholds are
    drawn from the observed in-distribution variance distribution, each
    is evaluated end-to-end, and :func:`repro.core.calibration.select_threshold`
    picks the winner.  Returns the chosen threshold together with the
    full candidate/QoE table for inspection.
    """
    if signal.binary:
        raise CalibrationError(
            "binary signals use the fixed consecutive rule; only continuous "
            "signals are calibrated"
        )
    if not traces:
        raise CalibrationError("no calibration traces supplied")
    if tolerance_fraction < 0:
        raise CalibrationError(
            f"tolerance_fraction must be >= 0, got {tolerance_fraction}"
        )
    if candidate_alphas is None:
        observed = collect_window_variances(
            signal, learned, manifest, traces, k=k, qoe_metric=qoe_metric, seed=seed
        )
        positive = observed[observed > 0]
        if positive.size == 0:
            # The signal never varies in-distribution: any tiny bar works.
            candidate_alphas = [1e-12]
        else:
            quantiles = np.quantile(positive, CANDIDATE_QUANTILES)
            candidate_alphas = sorted(set(float(q) for q in quantiles))
            candidate_alphas.append(float(positive.max()) * 2.0)
    candidates: list[tuple[float, float]] = []
    for alpha in candidate_alphas:
        controller = SafetyController(
            learned=learned,
            default=default,
            signal=signal,
            trigger=VarianceTrigger(alpha=alpha, k=k, l=l),
        )
        qoe = evaluate_mean_qoe(
            controller, manifest, traces, qoe_metric=qoe_metric, seed=seed
        )
        candidates.append((float(alpha), qoe))
    return select_threshold(
        candidates, target_qoe, tolerance_fraction=tolerance_fraction
    )
