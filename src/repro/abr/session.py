"""Run a full streaming session: one policy, one trace, one video.

:func:`run_session` is the evaluation primitive everything above it builds
on — the figure harness runs it over every (policy, test trace) pair and
aggregates the session QoE values.  :func:`run_monitored_session` is the
same loop driven through the explicit
:class:`~repro.core.monitor.SafetyMonitor` API — the monitor decides who
acts at every step — and is bitwise-identical to wrapping the policies in
a :class:`~repro.core.monitor.SafetyController` (asserted by the
equivalence sweep).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.abr.env import ABREnv
from repro.core.monitor import SafetyMonitor
from repro.errors import SimulationError
from repro.mdp.interfaces import Policy
from repro.traces.trace import Trace
from repro.util.rng import rng_from_seed
from repro.video.manifest import VideoManifest
from repro.video.qoe import QoEMetric

__all__ = ["ChunkRecord", "SessionResult", "run_monitored_session", "run_session"]


@dataclass(frozen=True)
class ChunkRecord:
    """Everything recorded about one chunk download."""

    chunk_index: int
    bitrate_index: int
    bitrate_mbps: float
    rebuffer_s: float
    download_time_s: float
    throughput_mbps: float
    buffer_s: float
    reward: float
    defaulted: bool = False


@dataclass
class SessionResult:
    """Aggregated outcome of a streaming session."""

    trace_name: str
    policy_name: str
    chunks: list[ChunkRecord] = field(default_factory=list)
    observation_list: list[np.ndarray] = field(default_factory=list)
    _observations_cache: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )
    _observations_cache_length: int = field(default=-1, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.chunks)

    @property
    def observations(self) -> np.ndarray:
        """The observations the policy acted on, stacked ``(T, 6, 8)``.

        The stack is cached and rebuilt only when observations have been
        appended since the last access (value-target collection reads this
        repeatedly for sessions that are no longer growing).
        """
        if not self.observation_list:
            raise SimulationError("session recorded no observations")
        if (
            self._observations_cache is None
            or self._observations_cache_length != len(self.observation_list)
        ):
            self._observations_cache = np.stack(self.observation_list)
            self._observations_cache_length = len(self.observation_list)
        return self._observations_cache

    @property
    def qoe(self) -> float:
        """Total session QoE (equals the sum of per-chunk rewards)."""
        return float(sum(record.reward for record in self.chunks))

    @property
    def bitrates_mbps(self) -> np.ndarray:
        """Selected bitrate per chunk (Mbit/s)."""
        return np.array([r.bitrate_mbps for r in self.chunks])

    @property
    def rebuffer_total_s(self) -> float:
        """Total stall time across the session."""
        return float(sum(r.rebuffer_s for r in self.chunks))

    @property
    def bitrate_switches(self) -> int:
        """Number of chunk-to-chunk rung changes."""
        indices = [r.bitrate_index for r in self.chunks]
        return int(sum(1 for a, b in zip(indices, indices[1:]) if a != b))

    @property
    def default_fraction(self) -> float:
        """Fraction of decisions delegated to the default policy (safety
        controllers only; 0 for plain policies)."""
        if not self.chunks:
            return 0.0
        return sum(1 for r in self.chunks if r.defaulted) / len(self.chunks)


def _stream_session(
    select: Callable[[np.ndarray, np.random.Generator], tuple[int, bool | None]],
    manifest: VideoManifest,
    trace: Trace,
    qoe_metric: QoEMetric | None,
    seed: int | np.random.Generator | None,
    policy_name: str,
    start_offset_s: float,
) -> SessionResult:
    """The shared session loop behind both entry points.

    *select* makes one decision: it receives the observation and the
    session RNG and returns ``(action, defaulted)``, where ``defaulted``
    may be ``None`` to fall back to the environment's own flag.
    """
    watching = obs.enabled()
    start = time.perf_counter() if watching else 0.0
    env = ABREnv(
        manifest=manifest,
        trace=trace,
        qoe_metric=qoe_metric,
        start_offset_s=start_offset_s,
    )
    rng = rng_from_seed(seed)
    observation = env.reset()
    result = SessionResult(trace_name=trace.name, policy_name=policy_name)
    for _ in range(manifest.num_chunks - 1):
        action, defaulted = select(observation, rng)
        result.observation_list.append(np.asarray(observation, dtype=float).copy())
        step = env.step(action)
        if defaulted is None:
            defaulted = bool(step.info.get("defaulted", False))
        result.chunks.append(
            ChunkRecord(
                chunk_index=step.info["chunk_index"],
                bitrate_index=step.info["bitrate_index"],
                bitrate_mbps=step.info["bitrate_mbps"],
                rebuffer_s=step.info["rebuffer_s"],
                download_time_s=step.info["download_time_s"],
                throughput_mbps=step.info["throughput_mbps"],
                buffer_s=step.info["buffer_s"],
                reward=step.reward,
                defaulted=defaulted,
            )
        )
        observation = step.observation
        if step.done:
            break
    if not result.chunks:
        raise SimulationError("session produced no agent-controlled chunks")
    if watching:
        wall = time.perf_counter() - start
        obs.inc("session.runs", policy=result.policy_name)
        obs.observe("session.wall_seconds", wall, policy=result.policy_name)
        if wall > 0:
            obs.observe(
                "session.steps_per_second",
                len(result.chunks) / wall,
                policy=result.policy_name,
            )
    return result


def run_session(
    policy: Policy,
    manifest: VideoManifest,
    trace: Trace,
    qoe_metric: QoEMetric | None = None,
    seed: int | np.random.Generator | None = 0,
    policy_name: str | None = None,
    start_offset_s: float = 0.0,
) -> SessionResult:
    """Stream the whole video through *trace* under *policy*.

    The environment fetches the first chunk at the lowest rung (reference
    behaviour); the policy then decides every remaining chunk.  Returns the
    complete per-chunk record.
    """
    policy.reset()

    def select(
        observation: np.ndarray, rng: np.random.Generator
    ) -> tuple[int, bool | None]:
        action = policy.act(observation, rng)
        if hasattr(policy, "last_decision_defaulted"):
            return action, bool(policy.last_decision_defaulted)
        return action, None

    return _stream_session(
        select,
        manifest,
        trace,
        qoe_metric,
        seed,
        policy_name or type(policy).__name__,
        start_offset_s,
    )


def run_monitored_session(
    learned: Policy,
    default: Policy,
    monitor: SafetyMonitor,
    manifest: VideoManifest,
    trace: Trace,
    qoe_metric: QoEMetric | None = None,
    seed: int | np.random.Generator | None = 0,
    policy_name: str | None = None,
    start_offset_s: float = 0.0,
) -> SessionResult:
    """Stream one session with the monitor deciding who acts at each step.

    The explicit form of wrapping *learned*/*default* in a
    :class:`~repro.core.monitor.SafetyController`: the monitor observes
    every step, and the policy it picks makes the decision.  Bitwise
    identical to the controller path (asserted by the equivalence sweep);
    the serve engine multiplexes many of these loops concurrently.
    """
    learned.reset()
    default.reset()
    monitor.reset()

    def select(
        observation: np.ndarray, rng: np.random.Generator
    ) -> tuple[int, bool | None]:
        decision = monitor.observe(observation)
        policy = default if decision.defaulted else learned
        return policy.act(observation, rng), decision.defaulted

    return _stream_session(
        select,
        manifest,
        trace,
        qoe_metric,
        seed,
        policy_name or monitor.name,
        start_offset_s,
    )
