"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``datasets`` — list the six datasets with summary statistics.
* ``traces``   — export a dataset's traces (bandwidth CSV or Mahimahi
  packet-delivery format, ready for a real emulation testbed).
* ``figures``  — regenerate the paper's figures at a configuration tier.
* ``runtimes`` — measure the Section 3.1 running-time remark.
* ``shapes``   — run the qualitative shape checks and exit non-zero on
  failure (CI-friendly).
* ``serve-demo`` — build one safety suite and serve N concurrent
  monitored sessions through the :mod:`repro.serve` engine.
* ``serve-api`` — boot the long-lived multi-tenant safety service
  (:mod:`repro.service`): clients attach sessions over a line-delimited
  JSON socket and stream observations for monitored decisions.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro import obs
from repro.config import ExperimentConfig, get_config
from repro.errors import ReproError
from repro.parallel import executor
from repro.pensieve import checkpoint
from repro.experiments import (
    measure_runtimes,
    render_report,
    run_all_distributions,
    shape_checks,
)
from repro.experiments.artifacts import ArtifactCache
from repro.traces.dataset import DATASET_NAMES, make_dataset
from repro.traces.mahimahi import write_mahimahi
from repro.util.tables import render_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Online Safety Assurance for Learning-"
            "Augmented Systems' (HotNets '20)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list datasets with statistics")

    traces = subparsers.add_parser("traces", help="export a dataset's traces")
    traces.add_argument("--dataset", required=True, choices=DATASET_NAMES)
    traces.add_argument("--out", required=True, help="output directory")
    traces.add_argument(
        "--format", default="csv", choices=["csv", "mahimahi"],
        help="bandwidth CSV or Mahimahi packet-delivery format",
    )
    traces.add_argument("--count", type=int, default=5)
    traces.add_argument("--duration", type=float, default=600.0)
    traces.add_argument("--seed", type=int, default=0)

    serve = subparsers.add_parser(
        "serve-demo",
        help="serve N concurrent monitored sessions through one engine",
    )
    serve.add_argument(
        "--config", default="smoke", choices=["smoke", "fast", "paper"]
    )
    serve.add_argument(
        "--sessions", type=int, default=16, help="number of concurrent sessions"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "process-pool size for session sharding (default: the "
            "REPRO_MAX_WORKERS environment variable, else in-process); "
            "results are identical at any setting"
        ),
    )
    serve.add_argument(
        "--domain",
        default="abr",
        metavar="KEY",
        help=(
            "registered domain to serve (see repro.domains); an unknown "
            "key fails with the registered domains listed"
        ),
    )
    serve.add_argument(
        "--scheme",
        default=None,
        choices=["ND", "A-ensemble", "V-ensemble", "demo"],
        help=(
            "which safety scheme serves the sessions: a trained ABR "
            "suite controller, or the domain's self-contained 'demo' "
            "scheme (default: A-ensemble for abr, demo otherwise)"
        ),
    )
    serve.add_argument(
        "--dataset",
        default=None,
        choices=DATASET_NAMES,
        help="training/test distribution (default: the config's first)",
    )
    serve.add_argument(
        "--continuous",
        action="store_true",
        help=(
            "serve through a bounded slot table (default: half the "
            "sessions) so finished sessions hand their slot to queued "
            "ones mid-wave; trajectories are identical either way"
        ),
    )
    serve.add_argument(
        "--max-slots",
        type=int,
        default=None,
        metavar="N",
        help=(
            "cap concurrently live sessions at N slots (implies "
            "--continuous admission through the slot free-list)"
        ),
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "collect serving metrics (serve.batch_size, "
            "serve.steps_per_second, serve.wave_occupancy, ...) and "
            "export them as JSON Lines to PATH"
        ),
    )

    api = subparsers.add_parser(
        "serve-api",
        help="boot the multi-tenant safety service on a TCP socket",
    )
    api.add_argument(
        "--host", default="127.0.0.1", help="interface to bind"
    )
    api.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 picks a free port, announced on stdout)",
    )
    api.add_argument(
        "--scheme",
        default="demo",
        choices=["demo"],
        help="safety scheme to serve (the self-contained demo scheme)",
    )
    api.add_argument(
        "--domain",
        default="abr",
        metavar="KEY",
        help=(
            "registered domain whose demo scheme the service hosts; an "
            "unknown key fails with the registered domains listed"
        ),
    )
    api.add_argument(
        "--store",
        default="memory",
        choices=["memory", "sqlite"],
        help="cold-store backend for evicted session snapshots",
    )
    api.add_argument(
        "--store-path",
        default=None,
        metavar="PATH",
        help="SQLite database path (required with --store sqlite)",
    )
    api.add_argument(
        "--hot-ttl",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="idle bound before a hot session is snapshotted to cold",
    )
    api.add_argument(
        "--evict-interval",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="period of the background TTL eviction task (0 disables)",
    )
    api.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        metavar="N",
        help="hot-slot budget; attaches beyond it get 'overloaded'",
    )
    api.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        metavar="N",
        help="concurrent stateful requests before load shedding",
    )
    api.add_argument(
        "--alpha",
        type=float,
        default=None,
        metavar="THRESH",
        help=(
            "demo scheme's trigger threshold (default: the domain's "
            "calibrated value)"
        ),
    )
    api.add_argument(
        "--seed", type=int, default=0, help="demo scheme's artifact seed"
    )
    api.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "collect per-tenant service metrics (service.steps, "
            "service.evictions, service.resumes, ...) and export them "
            "as JSON Lines to PATH when the service stops"
        ),
    )

    for name, help_text in (
        ("figures", "regenerate the paper's figures"),
        ("runtimes", "measure the running-time remark"),
        ("shapes", "run the qualitative shape checks"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument(
            "--config", default="fast", choices=["smoke", "fast", "paper"]
        )
        sub.add_argument(
            "--metrics-out",
            default=None,
            metavar="PATH",
            help=(
                "collect runtime metrics/traces and export them as JSON "
                f"Lines to PATH (also enabled by the {obs.METRICS_ENV} "
                "environment variable); result payloads are unaffected"
            ),
        )
        if name in ("figures", "shapes"):
            sub.add_argument(
                "--workers",
                type=int,
                default=None,
                help=(
                    "process-pool size for the experiment sweep (default: "
                    "the REPRO_MAX_WORKERS environment variable, else serial); "
                    "results are identical at any setting"
                ),
            )
            sub.add_argument(
                "--cache-root",
                default=None,
                metavar="DIR",
                help=(
                    "artifact cache directory (default: artifacts/ next to "
                    "the repository root)"
                ),
            )
            sub.add_argument(
                "--resume",
                action="store_true",
                help=(
                    "checkpoint training at epoch boundaries and resume "
                    "any interrupted suite build from its last checkpoint "
                    f"(cadence: the {checkpoint.CHECKPOINT_EVERY_ENV} "
                    "environment variable, else every epoch); resumed "
                    "results are bitwise identical to uninterrupted runs"
                ),
            )
            sub.add_argument(
                "--task-timeout",
                type=float,
                default=None,
                metavar="SECONDS",
                help=(
                    "per-task deadline for the experiment sweep's process "
                    "pool (default: the "
                    f"{executor.TASK_TIMEOUT_ENV} environment variable, "
                    "else no deadline); a stalled worker is killed and its "
                    "tasks retried or failed fast"
                ),
            )
    return parser


def _cmd_datasets(out) -> int:
    rows = []
    for name in DATASET_NAMES:
        dataset = make_dataset(name, num_traces=3, duration_s=300.0, seed=0)
        mean = sum(t.mean_bandwidth for t in dataset.traces) / len(dataset)
        rows.append(
            [
                name,
                "synthetic" if dataset.is_synthetic else "cellular (simulated)",
                round(mean, 2),
            ]
        )
    print(
        render_table(["dataset", "kind", "mean bandwidth (Mbit/s)"], rows),
        file=out,
    )
    return 0


def _cmd_traces(args, out) -> int:
    dataset = make_dataset(
        args.dataset, num_traces=args.count, duration_s=args.duration, seed=args.seed
    )
    directory = Path(args.out)
    directory.mkdir(parents=True, exist_ok=True)
    for trace in dataset.traces:
        if args.format == "mahimahi":
            path = directory / f"{trace.name}.mahi"
            write_mahimahi(trace, path)
        else:
            path = directory / f"{trace.name}.csv"
            lines = ["time_s,bandwidth_mbps"] + [
                f"{t:.3f},{b:.6f}"
                for t, b in zip(trace.times, trace.bandwidths_mbps)
            ]
            path.write_text("\n".join(lines) + "\n")
        print(f"wrote {path}", file=out)
    return 0


def _experiment_config(args) -> ExperimentConfig:
    """The configuration tier with the resilience flags applied.

    ``--task-timeout`` is exported through the environment so forked
    workers (which resolve their own executor knobs) inherit it;
    ``--resume`` switches on epoch checkpointing, whose cadence rides on
    the config object shipped to every worker.
    """
    config = get_config(args.config)
    if getattr(args, "task_timeout", None) is not None:
        executor.resolve_task_timeout(args.task_timeout)  # validate early
        os.environ[executor.TASK_TIMEOUT_ENV] = str(args.task_timeout)
    if getattr(args, "resume", False):
        every = checkpoint.resolve_checkpoint_every(None) or 1
        config = config.scaled(checkpoint_every=every)
    return config


def _cmd_figures(args, out) -> int:
    config = _experiment_config(args)
    cache = ArtifactCache(config.describe(), root=args.cache_root)
    matrix = run_all_distributions(
        config, cache, max_workers=args.workers, weight_root=cache.root
    )
    print(render_report(config, matrix), file=out)
    return 0


def _cmd_runtimes(args, out) -> int:
    config = get_config(args.config)
    runtimes = measure_runtimes(config)
    offline = runtimes["offline_seconds"]
    online = runtimes["online_ms_per_decision"]
    rows = [
        ["OC-SVM fit (s)", round(offline["ocsvm_fit"], 3)],
        ["one RL agent (s)", round(offline["agent_each"], 1)],
        ["one value function (s)", round(offline["value_each"], 1)],
        ["U_S decision (ms)", round(online["U_S"], 3)],
        ["U_pi decision (ms)", round(online["U_pi"], 3)],
        ["U_V decision (ms)", round(online["U_V"], 3)],
    ]
    print(render_table(["quantity", "measured"], rows), file=out)
    return 0


def _cmd_shapes(args, out) -> int:
    from repro.experiments.report import PRIMARY_CLAIMS

    config = _experiment_config(args)
    cache = ArtifactCache(config.describe(), root=args.cache_root)
    matrix = run_all_distributions(
        config, cache, max_workers=args.workers, weight_root=cache.root
    )
    checks = shape_checks(config, matrix)
    rows = [
        [
            name,
            "primary" if name in PRIMARY_CLAIMS else "secondary",
            "PASS" if ok else "FAIL",
        ]
        for name, ok in checks.items()
    ]
    print(render_table(["claim", "tier", "status"], rows), file=out)
    # The exit code tracks the paper's primary claims only; the secondary
    # scheme-ordering claims are reported but training-scale-sensitive.
    primary_ok = all(ok for name, ok in checks.items() if name in PRIMARY_CLAIMS)
    return 0 if primary_ok else 1


def _cmd_serve_demo(args, out) -> int:
    from repro.domains import get_domain
    from repro.serve import ServeEngine, SessionSpec, serve_sessions

    if args.sessions < 1:
        raise ReproError(f"--sessions must be >= 1, got {args.sessions}")
    max_slots = args.max_slots
    if max_slots is None and args.continuous:
        # Default slot cap that actually exercises continuous admission:
        # half the sessions queue behind the slot free-list.
        max_slots = max(1, args.sessions // 2)
    if max_slots is not None and max_slots < 1:
        raise ReproError(f"--max-slots must be >= 1, got {max_slots}")
    domain = get_domain(args.domain)
    scheme_name = args.scheme or ("A-ensemble" if args.domain == "abr" else "demo")
    config = get_config(args.config)
    dataset_name = args.dataset or config.datasets[0]
    split = domain.load_split(
        dataset_name,
        num_traces=config.num_traces,
        duration_s=config.trace_duration_s,
        seed=config.dataset_seed,
    )
    # Each session replays one of the held-out test traces (cycling when
    # there are more sessions than traces) under its own eval seed.
    specs = [
        SessionSpec(
            trace=split.test[index % len(split.test)],
            seed=config.eval_seed + index,
            name=f"session-{index:03d}",
        )
        for index in range(args.sessions)
    ]
    if scheme_name == "demo":
        print(
            f"building the {args.domain} demo scheme on {dataset_name} "
            f"({config.name} config) ...",
            file=out,
        )
        scheme = domain.demo_scheme()
        engine = ServeEngine(
            factory=scheme.factory,
            learned=scheme.learned,
            default=scheme.default,
            signal=scheme.signal,
            trigger=scheme.trigger,
            allow_revert=scheme.allow_revert,
            name=scheme.name,
            max_slots=max_slots,
        )
        serve = lambda: engine.run(specs, max_workers=args.workers)  # noqa: E731
    else:
        if args.domain != "abr":
            raise ReproError(
                f"scheme {scheme_name!r} needs the trained ABR suite; "
                f"use --scheme demo with --domain {args.domain}"
            )
        from repro.abr.suite import build_safety_suite
        from repro.policies.buffer_based import BufferBasedPolicy
        from repro.traces.dataset import SYNTHETIC_DATASETS
        from repro.video.envivio import envivio_dash3_manifest

        manifest = envivio_dash3_manifest(repeats=config.video_repeats)
        is_synthetic = dataset_name in SYNTHETIC_DATASETS
        print(
            f"building {scheme_name} suite on {dataset_name} "
            f"({config.name} config) ...",
            file=out,
        )
        suite = build_safety_suite(
            manifest,
            split,
            BufferBasedPolicy(manifest.bitrates_kbps),
            is_synthetic=is_synthetic,
            training_config=config.training,
            safety_config=config.safety,
            value_epochs=config.value_epochs,
            seed=config.suite_seed,
            max_workers=args.workers,
        )
        controller = suite.controllers()[scheme_name]
        factory = domain.session_factory(manifest=manifest)
        serve = lambda: serve_sessions(  # noqa: E731
            controller, factory, specs, max_workers=args.workers,
            max_slots=max_slots,
        )
    print(
        f"serving {args.sessions} concurrent sessions "
        f"({len(split.test)} test traces, workers={args.workers or 'in-process'}"
        + (f", continuous over {max_slots} slots" if max_slots else "")
        + ") ...",
        file=out,
    )
    results = serve()
    rows = [
        [
            spec.name,
            result.trace_name,
            round(result.qoe, 3),
            round(result.default_fraction, 3),
        ]
        for spec, result in zip(specs, results)
    ]
    print(
        render_table(
            ["session", "trace", "mean QoE", "default fraction"], rows
        ),
        file=out,
    )
    qoes = [result.qoe for result in results]
    fractions = [result.default_fraction for result in results]
    print(
        f"\n{scheme_name} over {len(results)} sessions: "
        f"mean QoE {sum(qoes) / len(qoes):.3f}, "
        f"mean default fraction {sum(fractions) / len(fractions):.3f}",
        file=out,
    )
    return 0


def _cmd_serve_api(args, out) -> int:
    import asyncio

    from repro.service import SafetyService, ServiceConfig, build_demo_scheme

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        store=args.store,
        store_path=args.store_path,
        hot_ttl_s=args.hot_ttl,
        evict_interval_s=args.evict_interval,
        max_sessions=args.max_sessions,
        max_inflight=args.max_inflight,
    )
    runtime = build_demo_scheme(
        alpha=args.alpha, seed=args.seed, domain=args.domain
    )
    service = SafetyService([runtime], config)

    def announce(ready: SafetyService) -> None:
        # One parseable line: harnesses (tools/service_smoke.py) read the
        # bound address off it, so keep the prefix stable and flush.
        print(
            f"service listening on {ready.bound_host}:{ready.bound_port} "
            f"(scheme {runtime.name!r}, store {config.store}, "
            f"ttl {config.hot_ttl_s:g}s, budget {config.max_sessions})",
            file=out,
            flush=True,
        )

    service.on_ready = announce
    try:
        asyncio.run(service.run())
    except KeyboardInterrupt:
        pass
    print(
        f"service stopped: {service.store.evictions} evictions, "
        f"{service.store.resumes} resumes, {service.shed_count} shed, "
        f"{service.overload_count} overloaded",
        file=out,
    )
    return 0


def _dispatch(args, out) -> int:
    if args.command == "figures":
        return _cmd_figures(args, out)
    if args.command == "runtimes":
        return _cmd_runtimes(args, out)
    if args.command == "shapes":
        return _cmd_shapes(args, out)
    if args.command == "serve-demo":
        return _cmd_serve_demo(args, out)
    if args.command == "serve-api":
        return _cmd_serve_api(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")


def _dispatch_with_metrics(args, out) -> int:
    """Run an experiment command under metric collection when requested.

    ``--metrics-out`` wins over the :data:`repro.obs.METRICS_ENV`
    environment switch; either way the records are exported as JSONL and
    a rendered run report follows the command's own output.
    """
    with obs.collecting(args.metrics_out) as run:
        code = _dispatch(args, out)
        print(f"\nrun report\n\n{obs.render_run_report(run)}", file=out)
    print(f"wrote metrics to {args.metrics_out}", file=out)
    return code


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "datasets":
            return _cmd_datasets(out)
        if args.command == "traces":
            return _cmd_traces(args, out)
        if getattr(args, "metrics_out", None) is None and obs.enabled():
            # Collection switched on by the environment variable: reuse
            # the already-active collector and export where it points.
            code = _dispatch(args, out)
            path = obs.export_jsonl(obs.default_export_path())
            print(f"wrote metrics to {path}", file=out)
            return code
        if getattr(args, "metrics_out", None) is not None:
            return _dispatch_with_metrics(args, out)
        return _dispatch(args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
